package netlist

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"

	"repro/internal/tech"
)

// refreshV2CRCs recomputes both checksums of a v2 image in place, so
// corruption tests can mutate structure and still reach the check that
// the mutation targets (instead of tripping the CRC first).
func refreshV2CRCs(b []byte) {
	count := binary.LittleEndian.Uint32(b[12:16])
	ps := v2HeaderSize + v2SectionSize*int(count)
	binary.LittleEndian.PutUint32(b[56:60], crc32.Checksum(b[ps:], castagnoli))
	binary.LittleEndian.PutUint32(b[8:12], crc32.Checksum(b[12:ps], castagnoli))
}

func sampleV2Bytes(t *testing.T, p *tech.Params) ([]byte, *Network, [32]byte) {
	t.Helper()
	nw, err := ReadSim("sample", p, strings.NewReader(sampleSim))
	if err != nil {
		t.Fatal(err)
	}
	hash := sha256.Sum256([]byte(sampleSim))
	var buf bytes.Buffer
	if err := WriteSnapshotV2(&buf, nw, hash); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), nw, hash
}

func writeTemp(t *testing.T, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "net.simx")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestSnapshotV1RoundTripProperty keeps the legacy encoder/decoder pair
// covered now that WriteSnapshot defaults to v2.
func TestSnapshotV1RoundTripProperty(t *testing.T) {
	p := tech.NMOS4()
	for seed := uint64(0); seed < 10; seed++ {
		nw := randomNetwork(seed, p)
		hash := sha256.Sum256([]byte(nw.Name))
		var buf bytes.Buffer
		if err := WriteSnapshotV1(&buf, nw, hash); err != nil {
			t.Fatalf("seed %d: write: %v", seed, err)
		}
		if v := binary.LittleEndian.Uint32(buf.Bytes()[4:8]); v != SnapshotVersion {
			t.Fatalf("seed %d: WriteSnapshotV1 emitted version %d", seed, v)
		}
		got, gotHash, err := ReadSnapshot(bytes.NewReader(buf.Bytes()), p)
		if err != nil {
			t.Fatalf("seed %d: read: %v", seed, err)
		}
		if gotHash != hash {
			t.Fatalf("seed %d: source hash mangled", seed)
		}
		if derr := DiffNetworks(nw, got); derr != nil {
			t.Fatalf("seed %d: %v", seed, derr)
		}
	}
}

// TestSnapshotVersionNegotiation pins the cross-version contract: both
// versions load through ReadSnapshot, only v2 loads through OpenMapped,
// and the v2 header keeps magic+version in the same place as v1 so an
// old v1-only reader rejects a v2 file with a clean version error
// rather than misparsing it.
func TestSnapshotVersionNegotiation(t *testing.T) {
	p := tech.NMOS4()
	nw, err := ReadSim("sample", p, strings.NewReader(sampleSim))
	if err != nil {
		t.Fatal(err)
	}
	hash := sha256.Sum256([]byte(sampleSim))

	var v1, v2 bytes.Buffer
	if err := WriteSnapshotV1(&v1, nw, hash); err != nil {
		t.Fatal(err)
	}
	if err := WriteSnapshotV2(&v2, nw, hash); err != nil {
		t.Fatal(err)
	}
	for name, data := range map[string][]byte{"v1": v1.Bytes(), "v2": v2.Bytes()} {
		got, gotHash, err := ReadSnapshot(bytes.NewReader(data), p)
		if err != nil {
			t.Fatalf("%s via ReadSnapshot: %v", name, err)
		}
		if gotHash != hash {
			t.Fatalf("%s: hash mangled", name)
		}
		if derr := DiffNetworks(nw, got); derr != nil {
			t.Fatalf("%s: %v", name, derr)
		}
	}

	// A v1 file must not map; the error is a version mismatch, and the
	// production path (loadFreshSnapshot) then falls back to the heap
	// decoder — proven by the LoadSimFile leg below.
	if _, err := OpenMapped(writeTemp(t, v1.Bytes()), p); err == nil {
		t.Fatal("OpenMapped accepted a v1 file")
	}

	// The v2-written-then-v1-read negotiation: a v1-only reader checks
	// magic then the version word at [4:8] and rejects anything != 1.
	// Pin the layout that guarantees that clean rejection.
	b := v2.Bytes()
	if string(b[:4]) != snapshotMagic || binary.LittleEndian.Uint32(b[4:8]) != SnapshotVersion2 {
		t.Fatal("v2 header does not keep the v1 magic/version prefix")
	}

	// And the full fallback: a fresh v1 snapshot file still serves
	// LoadSimFile warm loads (heap path), relabeled as a snapshot hit.
	dir := t.TempDir()
	simPath := filepath.Join(dir, "s.sim")
	snapPath := filepath.Join(dir, "s.simx")
	if err := os.WriteFile(simPath, []byte(sampleSim), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteSnapshotV1(f, nw, sha256.Sum256([]byte(sampleSim))); err != nil {
		t.Fatal(err)
	}
	f.Close()
	warm, res, err := LoadSimFile("sample", simPath, p, LoadOptions{Snapshot: snapPath})
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != SourceSnapshot {
		t.Fatalf("v1 file served with source %q, want %q", res.Source, SourceSnapshot)
	}
	if derr := DiffNetworks(nw, warm); derr != nil {
		t.Fatal(derr)
	}
}

// TestMappedRoundTrip: the zero-copy mapped view is structurally
// identical to the written network, its lazy name index answers
// lookups, and Close-after-discard is safe.
func TestMappedRoundTrip(t *testing.T) {
	p := tech.NMOS4()
	data, nw, hash := sampleV2Bytes(t, p)
	m, err := OpenMapped(writeTemp(t, data), p)
	if err != nil {
		t.Fatal(err)
	}
	if m.SourceHash != hash {
		t.Fatal("mapped source hash mangled")
	}
	if m.Size() != len(data) {
		t.Fatalf("mapped size %d, want %d", m.Size(), len(data))
	}
	if derr := DiffNetworks(nw, m.Net); derr != nil {
		t.Fatal(derr)
	}
	// Lazy index: built on first Lookup, shared thereafter.
	for _, n := range nw.Nodes {
		got := m.Net.Lookup(n.Name)
		if got == nil || got.Index != n.Index {
			t.Fatalf("mapped Lookup(%q) = %v", n.Name, got)
		}
	}
	var a, b strings.Builder
	if err := WriteSim(&a, nw); err != nil {
		t.Fatal(err)
	}
	if err := WriteSim(&b, m.Net); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("WriteSim differs through the mapped view")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil { // double close is defined
		t.Fatal(err)
	}
}

// TestMappedCorruption: every corruption class the section machinery
// must reject — with the CRCs refreshed where needed so the targeted
// check, not the checksum, does the rejecting.
func TestMappedCorruption(t *testing.T) {
	p := tech.NMOS4()
	data, _, _ := sampleV2Bytes(t, p)

	mutate := func(name string, f func(b []byte) []byte) {
		b := f(bytes.Clone(data))
		if _, err := OpenMapped(writeTemp(t, b), p); err == nil {
			t.Errorf("%s: mapped load accepted corrupt file", name)
		}
		if _, _, err := ReadSnapshot(bytes.NewReader(b), p); err == nil {
			t.Errorf("%s: heap load accepted corrupt file", name)
		}
	}

	mutate("truncated header", func(b []byte) []byte { return b[:40] })
	mutate("truncated section table", func(b []byte) []byte { return b[:v2HeaderSize+8] })
	mutate("truncated payload", func(b []byte) []byte { return b[:len(b)-8] })
	mutate("trailing garbage", func(b []byte) []byte { return append(b, 0) })
	mutate("payload CRC mismatch", func(b []byte) []byte {
		b[len(b)-1] ^= 0x40
		return b
	})
	mutate("header CRC mismatch", func(b []byte) []byte {
		b[16] ^= 0x40 // fileSize low byte, CRC not refreshed
		return b
	})
	mutate("misaligned section offset", func(b []byte) []byte {
		off := binary.LittleEndian.Uint64(b[v2HeaderSize+8:])
		binary.LittleEndian.PutUint64(b[v2HeaderSize+8:], off+1)
		refreshV2CRCs(b)
		return b
	})
	mutate("section out of bounds", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[v2HeaderSize+8:], uint64(len(b)+8))
		refreshV2CRCs(b)
		return b
	})
	mutate("section overlaps header", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[v2HeaderSize+8:], 0)
		refreshV2CRCs(b)
		return b
	})
	mutate("duplicate section", func(b []byte) []byte {
		copy(b[v2HeaderSize+v2SectionSize:], b[v2HeaderSize:v2HeaderSize+v2SectionSize])
		refreshV2CRCs(b)
		return b
	})
	mutate("missing section", func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[v2HeaderSize:], 63) // retag tech as unknown id
		refreshV2CRCs(b)
		return b
	})
	mutate("implausible node count", func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[60:64], 1<<30)
		refreshV2CRCs(b)
		return b
	})
	mutate("wrong file size", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[16:24], uint64(len(b))+8)
		refreshV2CRCs(b)
		return b
	})

	// The v1 suite's exhaustive guarantee, on the mapped reader: any
	// single-byte flip anywhere in the file must be rejected.
	for off := 0; off < len(data); off++ {
		mut := bytes.Clone(data)
		mut[off] ^= 0x40
		if _, err := OpenMapped(writeTemp(t, mut), p); err == nil {
			t.Fatalf("single-byte corruption at offset %d accepted by mapped load", off)
		}
	}
}

// TestMappedConcurrentLookup: many goroutines race first Lookup on one
// shared mapped view (the lazy byName build) while others walk adjacency
// — the shape of N crystald sessions aliasing one arena mapping. Run
// under -race in the CI netlist race job.
func TestMappedConcurrentLookup(t *testing.T) {
	p := tech.NMOS4()
	data, nw, _ := sampleV2Bytes(t, p)
	m, err := OpenMapped(writeTemp(t, data), p)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(nw.Nodes))
	for i, n := range nw.Nodes {
		names[i] = n.Name
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := range names {
				name := names[(i+g)%len(names)]
				n := m.Net.Lookup(name)
				if n == nil || n.Name != name {
					errs <- &os.PathError{Op: "lookup", Path: name}
					return
				}
				for _, tr := range n.Terms {
					if tr.Other(n) == nil {
						errs <- &os.PathError{Op: "adjacency", Path: name}
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestReadSnapshotV1NameAllocations is the regression test for the v1
// decoder's name handling: names are substrings of the one retained
// payload string, so decoding a network with hundreds more nodes must
// not cost hundreds more allocations. The delta between a small and a
// large network bounds the per-name overhead at zero (plus a small
// constant for map growth and backing arrays).
func TestReadSnapshotV1NameAllocations(t *testing.T) {
	p := tech.NMOS4()
	encode := func(nNodes int) []byte {
		nw := New("alloc", p)
		prev := nw.Vdd()
		for i := 0; i < nNodes; i++ {
			n := nw.Node(strings.Repeat("n", 1+i%7) + "_" + string(rune('a'+i%26)) + "_" + itoa(i))
			nw.AddTrans(tech.NEnh, prev, n, nw.GND(), 0, 0)
			prev = n
		}
		var buf bytes.Buffer
		if err := WriteSnapshotV1(&buf, nw, [32]byte{1}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	allocs := func(data []byte) float64 {
		return testing.AllocsPerRun(10, func() {
			if _, _, err := ReadSnapshot(bytes.NewReader(data), p); err != nil {
				t.Fatal(err)
			}
		})
	}
	small, large := encode(50), encode(450)
	delta := allocs(large) - allocs(small)
	// 400 extra nodes: a per-name allocation would add ≥400 here. The
	// real delta is map/backing-array growth, well under 50.
	if delta > 50 {
		t.Fatalf("v1 decode allocations grew by %.0f for 400 extra nodes — per-name allocation regressed", delta)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	n := len(b)
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	return string(b[n:])
}

// FuzzSnapshotV2 fuzzes the v2 header/section decoder (heap path — the
// same parseV2/buildV2 the mmap loader runs). Decodable inputs must
// re-encode and re-decode to an identical network.
func FuzzSnapshotV2(f *testing.F) {
	p := tech.NMOS4()
	nw, err := ReadSim("sample", p, strings.NewReader(sampleSim))
	if err != nil {
		f.Fatal(err)
	}
	var valid bytes.Buffer
	if err := WriteSnapshotV2(&valid, nw, sha256.Sum256([]byte(sampleSim))); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:60])
	f.Add([]byte(snapshotMagic))
	trunc := bytes.Clone(valid.Bytes()[:v2HeaderSize+v2SectionSize])
	f.Add(trunc)
	flip := bytes.Clone(valid.Bytes())
	flip[len(flip)/2] ^= 0xff
	f.Add(flip)
	empty := New("empty", p)
	var emptyBuf bytes.Buffer
	if err := WriteSnapshotV2(&emptyBuf, empty, [32]byte{}); err != nil {
		f.Fatal(err)
	}
	f.Add(emptyBuf.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		got, hash, err := readSnapshotV2(data, p)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteSnapshotV2(&buf, got, hash); err != nil {
			t.Fatalf("re-encode of decoded network failed: %v", err)
		}
		again, hash2, err := readSnapshotV2(buf.Bytes(), p)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if hash2 != hash {
			t.Fatal("source hash changed across round trip")
		}
		if derr := DiffNetworks(got, again); derr != nil {
			t.Fatal(derr)
		}
	})
}

// TestBuildV2ParallelMatchesSerial drives both buildV2 strategies — the
// fused single-P scan and the overlapped multi-P passes — over the same
// image and requires identical networks. GOMAXPROCS is forced both ways
// so the parallel path is exercised even on single-CPU hosts (where the
// race detector would otherwise never see it).
func TestBuildV2ParallelMatchesSerial(t *testing.T) {
	p := tech.NMOS4()
	nw := New("par", p)
	prev := nw.Node("in")
	nw.MarkInput(prev)
	// Well above the 1<<14-transistor threshold that separates the two
	// strategies.
	for i := 0; i < 10000; i++ {
		cur := nw.Node(fmt.Sprintf("c%d", i))
		nw.AddTrans(tech.NEnh, prev, cur, nw.GND(), 4e-6, 2e-6)
		nw.AddTrans(tech.NDep, cur, cur, nw.Vdd(), 2e-6, 8e-6)
		prev = cur
	}
	nw.MarkOutput(prev)
	hash := sha256.Sum256([]byte(nw.Name))
	var buf bytes.Buffer
	if err := WriteSnapshotV2(&buf, nw, hash); err != nil {
		t.Fatal(err)
	}

	decode := func() *Network {
		got, gotHash, err := readSnapshotV2(buf.Bytes(), p)
		if err != nil {
			t.Fatal(err)
		}
		if gotHash != hash {
			t.Fatal("source hash changed across decode")
		}
		return got
	}
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	serial := decode()
	runtime.GOMAXPROCS(4)
	parallel := decode()
	if err := DiffNetworks(serial, parallel); err != nil {
		t.Fatalf("parallel build differs from serial: %v", err)
	}
	if err := DiffNetworks(nw, parallel); err != nil {
		t.Fatalf("parallel build differs from source network: %v", err)
	}
}
