// Command esim is a batch switch-level logic simulator over .sim netlists,
// in the spirit of the Berkeley esim tool the paper's ecosystem grew from.
// It reads a command script (file or stdin) and prints node values after
// each settle.
//
// Usage:
//
//	esim -sim counter.sim [-tech nmos-4u] [-script cmds.txt]
//	     [-workers 1] [-snapshot counter.simx]
//
// -workers parallelizes the .sim parse (0 = all cores); -snapshot names
// a binary .simx cache loaded in place of parsing when fresh and
// rewritten otherwise (see docs/PERFORMANCE.md, "Ingest").
//
// Script commands (one per line, '#' comments):
//
//	h <node>...        drive nodes high
//	l <node>...        drive nodes low
//	x <node>...        release nodes (undriven unknown)
//	s                  settle and report watched nodes
//	w <node>...        add nodes to the watch list
//	d                  dump all node values
//	check <node>=<v>   assert a node's value (0, 1, or X); exit 1 on failure
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/netlist"
	"repro/internal/switchsim"
	"repro/internal/tech"
)

func main() {
	simFile := flag.String("sim", "", "input .sim netlist (required)")
	techName := flag.String("tech", "nmos-4u", "technology: nmos-4u or cmos-3u")
	script := flag.String("script", "", "command script (default stdin)")
	workers := flag.Int("workers", 1, "parser worker count (0 = all cores)")
	snapshot := flag.String("snapshot", "", "binary .simx netlist cache: load it when fresh, rewrite it after a parse")
	flag.Parse()

	if *simFile == "" {
		fatal(fmt.Errorf("missing -sim file"))
	}
	var p *tech.Params
	switch *techName {
	case "nmos-4u", "nmos":
		p = tech.NMOS4()
	case "cmos-3u", "cmos":
		p = tech.CMOS3()
	default:
		fatal(fmt.Errorf("unknown technology %q", *techName))
	}
	nw, _, err := netlist.LoadSimFile(*simFile, *simFile, p,
		netlist.LoadOptions{Workers: *workers, Snapshot: *snapshot})
	if err != nil {
		fatal(err)
	}

	var in io.Reader = os.Stdin
	if *script != "" {
		sf, err := os.Open(*script)
		if err != nil {
			fatal(err)
		}
		defer sf.Close()
		in = sf
	}
	if err := run(nw, in, os.Stdout); err != nil {
		fatal(err)
	}
}

// run executes the command stream; split out for testing.
func run(nw *netlist.Network, in io.Reader, out io.Writer) error {
	s := switchsim.New(nw)
	var watch []string
	// Default watch list: marked outputs.
	for _, n := range nw.Outputs() {
		watch = append(watch, n.Name)
	}
	sc := bufio.NewScanner(in)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		cmd := fields[0]
		args := fields[1:]
		drive := func(v switchsim.Value) error {
			for _, name := range args {
				if err := s.SetInputName(name, v); err != nil {
					return fmt.Errorf("line %d: %w", lineno, err)
				}
			}
			return nil
		}
		switch cmd {
		case "h":
			if err := drive(switchsim.V1); err != nil {
				return err
			}
		case "l":
			if err := drive(switchsim.V0); err != nil {
				return err
			}
		case "x":
			if err := drive(switchsim.VX); err != nil {
				return err
			}
		case "w":
			watch = append(watch, args...)
		case "s":
			sweeps := s.Settle()
			fmt.Fprintf(out, "settled (%d sweeps)", sweeps)
			if s.Oscillated() {
				fmt.Fprintf(out, " [oscillation → X]")
			}
			for _, name := range watch {
				fmt.Fprintf(out, " %s=%s", name, s.ValueName(name))
			}
			fmt.Fprintln(out)
		case "d":
			for _, name := range nw.SortedNodeNames() {
				fmt.Fprintf(out, "%s=%s ", name, s.ValueName(name))
			}
			fmt.Fprintln(out)
		case "check":
			for _, a := range args {
				name, val, ok := strings.Cut(a, "=")
				if !ok {
					return fmt.Errorf("line %d: bad check %q", lineno, a)
				}
				var want switchsim.Value
				switch val {
				case "0":
					want = switchsim.V0
				case "1":
					want = switchsim.V1
				case "X", "x":
					want = switchsim.VX
				default:
					return fmt.Errorf("line %d: bad value %q", lineno, val)
				}
				if got := s.ValueName(name); got != want {
					return fmt.Errorf("line %d: check failed: %s=%s, want %s", lineno, name, got, want)
				}
			}
		default:
			return fmt.Errorf("line %d: unknown command %q", lineno, cmd)
		}
	}
	return sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "esim:", err)
	os.Exit(1)
}
