// Experiments E2–E5: model accuracy against the analog reference.
package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/gen"
	"repro/internal/stage"
	"repro/internal/tech"
)

// AccuracyRow is one line of an accuracy table: a scenario's analog
// reference delay and each model's prediction.
type AccuracyRow struct {
	Scenario string
	X        float64 // sweep coordinate (chain length, fanout, slope…); 0 for E2
	Analog   float64
	Model    map[string]float64
}

// Err returns the percent error of the named model against the reference.
func (r *AccuracyRow) Err(model string) float64 {
	if r.Analog == 0 {
		return math.Inf(1)
	}
	return (r.Model[model] - r.Analog) / r.Analog * 100
}

// ModelNames returns the models present, in fidelity order when they are
// the standard three.
func (r *AccuracyRow) ModelNames() []string {
	std := []string{"lumped", "rc", "slope"}
	var names []string
	for _, s := range std {
		if _, ok := r.Model[s]; ok {
			names = append(names, s)
		}
	}
	var extra []string
	for k := range r.Model {
		found := false
		for _, s := range std {
			if s == k {
				found = true
			}
		}
		if !found {
			extra = append(extra, k)
		}
	}
	sort.Strings(extra)
	return append(names, extra...)
}

// runScenarios evaluates scenarios under every model and the reference.
// Scenarios are independent, so they fan out over the worker pool (the
// analog transient is by far the dominant cost per row); within one
// scenario the models run in order, sharing one stage database — the
// enumeration from the first model's run serves the others.
func runScenarios(scs []*Scenario, models []delay.Model) ([]AccuracyRow, error) {
	rows := make([]AccuracyRow, len(scs))
	err := core.RunMany(len(scs), Workers, func(i int) error {
		sc := scs[i]
		ref, _, err := sc.AnalogDelay()
		if err != nil {
			return err
		}
		row := AccuracyRow{Scenario: sc.Name, X: sc.X, Analog: ref, Model: map[string]float64{}}
		var db *stage.DB
		for _, m := range models {
			d, _, dbOut, err := sc.modelDelay(m, db)
			if err != nil {
				return err
			}
			db = dbOut
			row.Model[m.Name()] = d
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// E2ModelAccuracy runs the accuracy suite (Table E2): every suite circuit,
// all three models versus the analog reference.
func E2ModelAccuracy(p *tech.Params, tb *delay.Tables) ([]AccuracyRow, error) {
	scs, err := Suite(p)
	if err != nil {
		return nil, err
	}
	return runScenarios(scs, delay.All(tb))
}

// E3PassChains sweeps pass-transistor chain length (Table E3): the
// experiment that motivates the distributed model — lumped grows ~n²,
// distributed ~n²/2, and the reference agrees with the latter. Sweep
// points are built up front so the rows fan out over the worker pool.
func E3PassChains(p *tech.Params, tb *delay.Tables, lengths []int) ([]AccuracyRow, error) {
	if len(lengths) == 0 {
		lengths = []int{1, 2, 3, 4, 5, 6, 7, 8}
	}
	scs := make([]*Scenario, 0, len(lengths))
	for _, n := range lengths {
		sc, err := passScenario(p, n)
		if err != nil {
			return nil, err
		}
		sc.X = float64(n)
		scs = append(scs, sc)
	}
	return runScenarios(scs, delay.All(tb))
}

// E4Fanout sweeps capacitive fan-out on a single inverter (Figure E4):
// delay is linear in load for every model and the reference.
func E4Fanout(p *tech.Params, tb *delay.Tables, fanouts []int) ([]AccuracyRow, error) {
	if len(fanouts) == 0 {
		fanouts = []int{1, 2, 4, 8, 16}
	}
	scs := make([]*Scenario, 0, len(fanouts))
	for _, f := range fanouts {
		sc, err := invScenario(p, f, 0, fmt.Sprintf("fanout-%d", f))
		if err != nil {
			return nil, err
		}
		sc.X = float64(f)
		scs = append(scs, sc)
	}
	return runScenarios(scs, delay.All(tb))
}

// E5InputSlope sweeps the input transition time into a fixed inverter
// (Figure E5): only the slope model tracks the reference; lumped and
// distributed are flat by construction.
func E5InputSlope(p *tech.Params, tb *delay.Tables, slopes []float64) ([]AccuracyRow, error) {
	if len(slopes) == 0 {
		slopes = []float64{0.1e-9, 1e-9, 4e-9, 10e-9, 20e-9, 40e-9}
	}
	scs := make([]*Scenario, 0, len(slopes))
	for _, s := range slopes {
		sc, err := invScenario(p, 2, s, fmt.Sprintf("slope-%.3gns", s*1e9))
		if err != nil {
			return nil, err
		}
		sc.X = s
		scs = append(scs, sc)
	}
	return runScenarios(scs, delay.All(tb))
}

// E9PolyWire sweeps the length of a resistive interconnect wire (the
// Penfield–Rubinstein motivating structure): total wire resistance and
// capacitance scale together with length, modeled as a 10-section ladder.
// Lumped grows quadratically in length; distributed tracks the reference.
func E9PolyWire(p *tech.Params, tb *delay.Tables, lengths []int) ([]AccuracyRow, error) {
	if len(lengths) == 0 {
		lengths = []int{1, 2, 3, 4, 5}
	}
	scs := make([]*Scenario, 0, len(lengths))
	for _, L := range lengths {
		nw, err := gen.PolyWire(p, 10, 20e3*float64(L), 200e-15*float64(L))
		if err != nil {
			return nil, err
		}
		scs = append(scs, &Scenario{
			Name:  fmt.Sprintf("wire-%dx", L),
			Net:   nw,
			Input: "in", InTr: tech.Rise,
			Output: "wend", OutTr: tech.Fall,
			// Long RC wires take several hundred ns to precharge.
			Settle: 600e-9,
			X:      float64(L),
		})
	}
	return runScenarios(scs, delay.All(tb))
}

// FormatAccuracy renders accuracy rows as an aligned text table with
// percent errors, the form the paper's accuracy tables take.
func FormatAccuracy(title string, rows []AccuracyRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if len(rows) == 0 {
		b.WriteString("(no rows)\n")
		return b.String()
	}
	models := rows[0].ModelNames()
	fmt.Fprintf(&b, "%-14s %10s", "circuit", "analog")
	for _, m := range models {
		fmt.Fprintf(&b, " %10s %7s", m, "err%")
	}
	b.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %9.2fns", r.Scenario, r.Analog*1e9)
		for _, m := range models {
			fmt.Fprintf(&b, " %9.2fns %+6.1f%%", r.Model[m]*1e9, r.Err(m))
		}
		b.WriteString("\n")
	}
	// Summary: mean |error| per model.
	fmt.Fprintf(&b, "%-14s %10s", "mean |err|", "")
	for _, m := range models {
		sum := 0.0
		for _, r := range rows {
			sum += math.Abs(r.Err(m))
		}
		fmt.Fprintf(&b, " %10s %6.1f%%", "", sum/float64(len(rows)))
	}
	b.WriteString("\n")
	return b.String()
}

// SuiteNames lists the E2 scenario names in order (used by tests to pin
// the suite's composition).
func SuiteNames(p *tech.Params) ([]string, error) {
	scs, err := Suite(p)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(scs))
	for i, s := range scs {
		names[i] = s.Name
	}
	return names, nil
}

// CSVAccuracy renders accuracy rows as CSV (one column per model plus the
// sweep coordinate), the machine-readable companion to FormatAccuracy for
// regenerating the figures in a plotting tool.
func CSVAccuracy(rows []AccuracyRow) string {
	var b strings.Builder
	if len(rows) == 0 {
		return ""
	}
	models := rows[0].ModelNames()
	b.WriteString("scenario,x,analog_s")
	for _, m := range models {
		fmt.Fprintf(&b, ",%s_s,%s_err_pct", m, m)
	}
	b.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s,%g,%g", r.Scenario, r.X, r.Analog)
		for _, m := range models {
			fmt.Fprintf(&b, ",%g,%.2f", r.Model[m], r.Err(m))
		}
		b.WriteString("\n")
	}
	return b.String()
}
