package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/delay"
	"repro/internal/gen"
	"repro/internal/incremental"
	"repro/internal/netlist"
	"repro/internal/switchsim"
	"repro/internal/tech"
)

// metamorphicFamilies are the three circuit families the metamorphic
// relations run over: gate-load chains, a fan-out tree and a
// pass-transistor channel — the structures whose delay behaviour the
// models distinguish.
var metamorphicFamilies = []string{"invchain:6", "fanout:4", "passchain:6"}

// metamorphicAnalyze writes a network to .sim text, optionally transforms
// the text, re-reads it and runs the slope-model analysis — the
// follow-up half of each metamorphic relation, always going through the
// full parse-analyze pipeline so the relation covers the reader too.
func metamorphicAnalyze(t *testing.T, simText string) *Analyzer {
	t.Helper()
	return metamorphicAnalyzeOpts(t, simText, Options{})
}

// metamorphicAnalyzeOpts is metamorphicAnalyze with explicit analyzer
// options, for the relations that sweep worker counts and the reorder
// setting.
func metamorphicAnalyzeOpts(t *testing.T, simText string, opts Options) *Analyzer {
	t.Helper()
	p := tech.NMOS4()
	nw, err := netlist.ReadSim("meta", p, strings.NewReader(simText))
	if err != nil {
		t.Fatal(err)
	}
	a := buildAnalyzer(t, nw, delay.NewSlope(delay.AnalyticTables(p)), nil, nil, opts)
	if err := a.Run(); err != nil {
		t.Fatal(err)
	}
	return a
}

func simText(t *testing.T, nw *netlist.Network) string {
	t.Helper()
	var b strings.Builder
	if err := netlist.WriteSim(&b, nw); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// mapSimNames rewrites every node name in .sim text through rename,
// preserving the rails (they are structural, not labels).
func mapSimNames(text string, rename func(string) string) string {
	mapName := func(s string) string {
		if s == "Vdd" || s == "GND" {
			return s
		}
		return rename(s)
	}
	var out []string
	for _, line := range strings.Split(text, "\n") {
		f := strings.Fields(line)
		if len(f) == 0 || f[0] == "|" || strings.HasPrefix(f[0], "|") {
			out = append(out, line)
			continue
		}
		switch f[0] {
		case "e", "d", "nenh", "ndep", "penh": // type gate a b l w
			for i := 1; i <= 3 && i < len(f); i++ {
				f[i] = mapName(f[i])
			}
		case "r": // r a b ohms
			for i := 1; i <= 2 && i < len(f); i++ {
				f[i] = mapName(f[i])
			}
		case "N": // N node fF
			f[1] = mapName(f[1])
		case "@": // node-name directives only; flow references device indexes
			if len(f) > 1 && (f[1] == "in" || f[1] == "out" || f[1] == "precharged") {
				for i := 2; i < len(f); i++ {
					f[i] = mapName(f[i])
				}
			}
		}
		out = append(out, strings.Join(f, " "))
	}
	return strings.Join(out, "\n")
}

// TestMetamorphicRenaming: node names are labels, nothing more. Renaming
// every node (preserving first-appearance order, hence node indexes)
// must leave every arrival bit-identical and every critical path
// identical up to the renaming.
func TestMetamorphicRenaming(t *testing.T) {
	p := tech.NMOS4()
	for _, spec := range metamorphicFamilies {
		t.Run(strings.ReplaceAll(spec, ":", "-"), func(t *testing.T) {
			nw, err := gen.Build(spec, p)
			if err != nil {
				t.Fatal(err)
			}
			text := simText(t, nw)
			rename := func(s string) string { return "zz_" + s + "_q" }
			base := metamorphicAnalyze(t, text)
			ren := metamorphicAnalyze(t, mapSimNames(text, rename))

			if len(base.Net.Nodes) != len(ren.Net.Nodes) {
				t.Fatalf("renaming changed node count: %d vs %d",
					len(base.Net.Nodes), len(ren.Net.Nodes))
			}
			for i, n := range base.Net.Nodes {
				rn := ren.Net.Nodes[i]
				if !n.IsRail() && rn.Name != rename(n.Name) {
					t.Fatalf("node %d: renaming reordered indexes (%s vs %s)", i, n.Name, rn.Name)
				}
				for _, tr := range []tech.Transition{tech.Rise, tech.Fall} {
					if w, g := base.Arrival(n, tr), ren.Arrival(rn, tr); !sameEvent(w, g) {
						t.Errorf("arrival %s/%s changed under renaming: %+v vs %+v", n.Name, tr, w, g)
					}
				}
			}
			wantPaths, gotPaths := base.CriticalPaths(5), ren.CriticalPaths(5)
			if len(wantPaths) != len(gotPaths) {
				t.Fatalf("critical path count changed: %d vs %d", len(wantPaths), len(gotPaths))
			}
			for i, wp := range wantPaths {
				gp := gotPaths[i]
				we, ge := wp.End(), gp.End()
				if rename(we.Node.Name) != ge.Node.Name || we.Event.T != ge.Event.T || we.Tr != ge.Tr {
					t.Errorf("critical path %d changed under renaming: %s/%s@%g vs %s/%s@%g",
						i, we.Node.Name, we.Tr, we.Event.T, ge.Node.Name, ge.Tr, ge.Event.T)
				}
			}
		})
	}
}

// TestMetamorphicSimRenaming: node names are labels to the switch-level
// engines too. Renaming every node (indexes preserved) must leave the
// scalar settle and the vectorized batch settle positionally
// bit-identical — values, sweep counts and oscillation flags — over a
// deterministic vector batch that includes released inputs. The relation
// goes through WriteSim/ReadSim, so it also covers the @-directive
// remapping (in/out/precharged markers feed the lattice's node sizes).
func TestMetamorphicSimRenaming(t *testing.T) {
	p := tech.NMOS4()
	for _, spec := range append([]string{"bus:3", "decoder:2"}, metamorphicFamilies...) {
		t.Run(strings.ReplaceAll(spec, ":", "-"), func(t *testing.T) {
			nw, err := gen.Build(spec, p)
			if err != nil {
				t.Fatal(err)
			}
			text := simText(t, nw)
			rename := func(s string) string { return "zz_" + s + "_q" }
			read := func(text string) *netlist.Network {
				rnw, err := netlist.ReadSim("meta", p, strings.NewReader(text))
				if err != nil {
					t.Fatal(err)
				}
				return rnw
			}
			base, ren := read(text), read(mapSimNames(text, rename))
			if len(base.Nodes) != len(ren.Nodes) {
				t.Fatalf("renaming changed node count: %d vs %d", len(base.Nodes), len(ren.Nodes))
			}
			sizes, rsizes := switchsim.NodeSizes(base), switchsim.NodeSizes(ren)
			for i := range sizes {
				if sizes[i] != rsizes[i] {
					t.Fatalf("node %d (%s): renaming changed size %s → %s",
						i, base.Nodes[i].Name, sizes[i], rsizes[i])
				}
			}

			ni := len(base.Inputs())
			vecs := make([]switchsim.Value, 0, 3*ni)
			for _, pattern := range [][]switchsim.Value{
				{switchsim.V0}, {switchsim.V1},
				{switchsim.V1, switchsim.VX, switchsim.V0},
			} {
				for i := 0; i < ni; i++ {
					vecs = append(vecs, pattern[i%len(pattern)])
				}
			}
			run := func(nw *netlist.Network) *switchsim.BatchResult {
				res, err := switchsim.NewBatch(nw).Run(vecs, nil)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			want, got := run(base), run(ren)
			if want.Sweeps != got.Sweeps {
				t.Errorf("renaming changed sweep count: %d vs %d", want.Sweeps, got.Sweeps)
			}
			for v := 0; v < want.Vectors; v++ {
				if want.Osc[v] != got.Osc[v] {
					t.Errorf("vector %d: renaming changed oscillation flag", v)
				}
				for n := range want.Out[v] {
					if want.Out[v][n] != got.Out[v][n] {
						t.Errorf("vector %d: node %s = %s, renamed %s",
							v, base.Nodes[n].Name, want.Out[v][n], got.Out[v][n])
					}
				}
			}

			// Scalar engine agrees under the same renaming (first vector).
			sim, rsim := switchsim.New(base), switchsim.New(ren)
			for i, in := range base.Inputs() {
				if err := sim.SetInput(in, vecs[i]); err != nil {
					t.Fatal(err)
				}
				if err := rsim.SetInput(ren.Inputs()[i], vecs[i]); err != nil {
					t.Fatal(err)
				}
			}
			sim.Settle()
			rsim.Settle()
			for i, n := range base.Nodes {
				if w, g := sim.Value(n), rsim.Value(ren.Nodes[i]); w != g {
					t.Errorf("scalar: node %s = %s, renamed %s", n.Name, w, g)
				}
			}
		})
	}
}

// TestMetamorphicReorderIdentity: the cache-conscious row reordering of
// the compiled network is an addressing change, not a semantic one. For
// every family, every worker count and both reorder settings, arrivals
// (time, slope, provenance), the Unbounded list, truncation and the
// evaluation count must be bit-identical to the serial reorder-off
// baseline — and the relation must also commute with renaming, so the
// permutation cannot be smuggling name-dependent state into results.
func TestMetamorphicReorderIdentity(t *testing.T) {
	for _, spec := range metamorphicFamilies {
		t.Run(strings.ReplaceAll(spec, ":", "-"), func(t *testing.T) {
			p := tech.NMOS4()
			nw, err := gen.Build(spec, p)
			if err != nil {
				t.Fatal(err)
			}
			text := simText(t, nw)
			base := metamorphicAnalyzeOpts(t, text, Options{Workers: 1, NoReorder: true})
			for _, workers := range []int{1, 2, 8} {
				for _, noReorder := range []bool{false, true} {
					label := fmt.Sprintf("w%d-reorder=%v", workers, !noReorder)
					got := metamorphicAnalyzeOpts(t, text,
						Options{Workers: workers, NoReorder: noReorder})
					requireIdentical(t, label, base, got, false)
				}
			}

			// Renaming + reordering together: rename every node, run with
			// reordering on at each worker count, and demand the same
			// arrivals as the un-renamed baseline (indexes are preserved
			// by first-appearance order, so positions compare directly).
			renamed := mapSimNames(text, func(s string) string { return "rr_" + s })
			for _, workers := range []int{1, 2, 8} {
				ren := metamorphicAnalyzeOpts(t, renamed, Options{Workers: workers})
				for i, n := range base.Net.Nodes {
					rn := ren.Net.Nodes[i]
					for _, tr := range []tech.Transition{tech.Rise, tech.Fall} {
						if w, g := base.Arrival(n, tr), ren.Arrival(rn, tr); !sameEvent(w, g) {
							t.Errorf("w%d: arrival %s/%s changed under rename+reorder: %+v vs %+v",
								workers, n.Name, tr, w, g)
						}
					}
				}
			}
		})
	}
}

// TestMetamorphicPermutation: the order transistors are listed in the
// source file is an artifact of netlist extraction. Permuting the lines
// permutes node indexes, but every per-name arrival time and slope must
// be unchanged. (Provenance may legitimately differ: equal-time ties
// break on node index, which is exactly what the permutation perturbs.)
func TestMetamorphicPermutation(t *testing.T) {
	p := tech.NMOS4()
	for _, spec := range metamorphicFamilies {
		t.Run(strings.ReplaceAll(spec, ":", "-"), func(t *testing.T) {
			nw, err := gen.Build(spec, p)
			if err != nil {
				t.Fatal(err)
			}
			text := simText(t, nw)
			base := metamorphicAnalyze(t, text)

			// Deterministic shuffle (LCG) of the device lines only;
			// directives and cap records keep their positions. Flow
			// directives reference devices by index, so they are remapped
			// through the permutation.
			var dev, rest []string
			var devOrder []int // devOrder[newIndex] = oldIndex
			for _, line := range strings.Split(text, "\n") {
				f := strings.Fields(line)
				if len(f) > 0 {
					switch f[0] {
					case "e", "d", "nenh", "ndep", "penh", "r":
						devOrder = append(devOrder, len(dev))
						dev = append(dev, line)
						continue
					}
				}
				rest = append(rest, line)
			}
			seed := uint64(0x9E3779B97F4A7C15)
			for i := len(dev) - 1; i > 0; i-- {
				seed = seed*6364136223846793005 + 1442695040888963407
				j := int(seed>>33) % (i + 1)
				dev[i], dev[j] = dev[j], dev[i]
				devOrder[i], devOrder[j] = devOrder[j], devOrder[i]
			}
			newIndex := make(map[int]int, len(devOrder))
			for ni, oi := range devOrder {
				newIndex[oi] = ni
			}
			for i, line := range rest {
				f := strings.Fields(line)
				if len(f) == 4 && f[0] == "@" && f[1] == "flow" {
					var oi int
					fmt.Sscanf(f[3], "%d", &oi)
					f[3] = fmt.Sprint(newIndex[oi])
					rest[i] = strings.Join(f, " ")
				}
			}
			perm := metamorphicAnalyze(t, strings.Join(append(dev, rest...), "\n"))

			for _, n := range base.Net.Nodes {
				pn := perm.Net.Lookup(n.Name)
				if pn == nil {
					t.Fatalf("node %s lost in permutation", n.Name)
				}
				for _, tr := range []tech.Transition{tech.Rise, tech.Fall} {
					w, g := base.Arrival(n, tr), perm.Arrival(pn, tr)
					if w.Valid != g.Valid || w.T != g.T || w.Slope != g.Slope {
						t.Errorf("arrival %s/%s changed under permutation: %+v vs %+v", n.Name, tr, w, g)
					}
				}
			}
			we, _ := base.MaxArrival()
			ge, _ := perm.MaxArrival()
			if we.T != ge.T {
				t.Errorf("critical arrival changed under permutation: %g vs %g", we.T, ge.T)
			}
		})
	}
}

// TestMetamorphicMonotonicity: physical pessimism must be monotone.
// Adding capacitance anywhere can only slow arrivals; halving a
// pulldown's width can only slow the fall it drives.
func TestMetamorphicMonotonicity(t *testing.T) {
	p := tech.NMOS4()
	tb := delay.AnalyticTables(p)
	const eps = 1e-18

	run := func(t *testing.T, nw *netlist.Network) *Analyzer {
		t.Helper()
		a := buildAnalyzer(t, nw, delay.NewSlope(tb), nil, nil, Options{})
		if err := a.Run(); err != nil {
			t.Fatal(err)
		}
		return a
	}
	requireNotFaster := func(t *testing.T, what string, base, slow *Analyzer) {
		t.Helper()
		worse := 0
		for i, n := range base.Net.Nodes {
			for _, tr := range []tech.Transition{tech.Rise, tech.Fall} {
				w, g := base.Arrival(n, tr), slow.Arrival(slow.Net.Nodes[i], tr)
				if w.Valid != g.Valid {
					t.Errorf("%s: reachability of %s/%s changed", what, n.Name, tr)
					continue
				}
				if !w.Valid {
					continue
				}
				if g.T < w.T-eps {
					t.Errorf("%s: %s/%s got faster: %g -> %g", what, n.Name, tr, w.T, g.T)
				}
				if g.T > w.T+eps {
					worse++
				}
			}
		}
		if worse == 0 {
			t.Errorf("%s: no arrival slowed down; relation is vacuous", what)
		}
	}

	for _, spec := range metamorphicFamilies {
		t.Run(strings.ReplaceAll(spec, ":", "-"), func(t *testing.T) {
			nw, err := gen.Build(spec, p)
			if err != nil {
				t.Fatal(err)
			}
			base := run(t, nw)

			t.Run("cap-increase", func(t *testing.T) {
				// Load every non-rail node a little harder.
				var edits []incremental.Edit
				for _, n := range nw.Nodes {
					if n.IsRail() || n.Kind == netlist.KindInput {
						continue
					}
					edits = append(edits, incremental.Edit{
						Kind: incremental.AddCap, Node: n.Name, Cap: 25e-15,
					})
				}
				res, err := incremental.Apply(nw, edits)
				if err != nil {
					t.Fatal(err)
				}
				requireNotFaster(t, "cap increase", base, run(t, res.Net))
			})
			t.Run("width-decrease", func(t *testing.T) {
				// Halve the width of every input-gated pulldown. Width
				// decrease is NOT globally monotone — the device's channel
				// capacitance loads its output, so a narrower pulldown
				// makes the pullup-driven rise faster — but the transition
				// the device itself drives (the fall at its non-rail
				// terminal) can only slow: resistance doubles while the
				// node keeps its wire and fanout-gate load.
				var edits []incremental.Edit
				var driven []*netlist.Node
				for i, tr := range nw.Trans {
					if tr.IsWire() || tr.Gate == nil || tr.Gate.Kind != netlist.KindInput {
						continue
					}
					var out *netlist.Node
					switch {
					case tr.A.Kind == netlist.KindGnd:
						out = tr.B
					case tr.B.Kind == netlist.KindGnd:
						out = tr.A
					default:
						continue // pass device: no unambiguous driven node
					}
					edits = append(edits, incremental.Edit{
						Kind: incremental.Resize, Index: i, W: tr.W / 2,
					})
					driven = append(driven, out)
				}
				if len(edits) == 0 {
					t.Skip("no input-gated pulldowns to weaken")
				}
				res, err := incremental.Apply(nw, edits)
				if err != nil {
					t.Fatal(err)
				}
				slow := run(t, res.Net)
				worse := 0
				for _, n := range driven {
					w, g := base.Arrival(n, tech.Fall), slow.Arrival(slow.Net.Nodes[n.Index], tech.Fall)
					if !w.Valid || !g.Valid {
						t.Errorf("width decrease: fall at %s unreachable (base %v, weakened %v)",
							n.Name, w.Valid, g.Valid)
						continue
					}
					if g.T < w.T-eps {
						t.Errorf("width decrease: %s/fall got faster: %g -> %g", n.Name, w.T, g.T)
					}
					if g.T > w.T+eps {
						worse++
					}
				}
				if worse == 0 {
					t.Error("width decrease slowed no driven fall; relation is vacuous")
				}
			})
		})
	}
}
