package delay

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/netlist"
	"repro/internal/stage"
	"repro/internal/tech"
)

// passNet builds an n-element pass chain from an input and returns the
// stage driving the far end (trigger = first device).
func passStage(n int) (*netlist.Network, *stage.Stage) {
	p := tech.NMOS4()
	nw := netlist.New("chain", p)
	in := nw.Node("in")
	nw.MarkInput(in)
	ctl := nw.Node("ctl")
	nw.MarkInput(ctl)
	prev := in
	for i := 0; i < n; i++ {
		next := nw.Node(string(rune('a' + i)))
		nw.AddTrans(tech.NEnh, ctl, prev, next, 0, 0)
		prev = next
	}
	res := stage.FromNode(nw, in, tech.Rise, stage.Options{})
	return nw, res.Stages[len(res.Stages)-1]
}

func TestCurveInterpolation(t *testing.T) {
	c := Curve{
		Ratio:   []float64{0, 1, 4},
		RMult:   []float64{1, 2, 5},
		TFactor: []float64{2, 3, 6},
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct{ r, want float64 }{
		{0, 1}, {0.5, 1.5}, {1, 2}, {2.5, 3.5}, {4, 5},
		{7, 8}, // extrapolated: slope 1 per unit ratio beyond the end
	}
	for _, tc := range cases {
		if got := c.MultAt(tc.r); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("MultAt(%g) = %g, want %g", tc.r, got, tc.want)
		}
	}
	if got := c.TFactorAt(0.5); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("TFactorAt(0.5) = %g", got)
	}
}

func TestCurveFloors(t *testing.T) {
	c := Curve{Ratio: []float64{0, 1}, RMult: []float64{1, -5}, TFactor: []float64{2, -5}}
	if got := c.MultAt(1); got != 0.05 {
		t.Errorf("MultAt should floor at 0.05, got %g", got)
	}
	if got := c.TFactorAt(1); got != 0.1 {
		t.Errorf("TFactorAt should floor at 0.1, got %g", got)
	}
}

func TestCurveValidate(t *testing.T) {
	bad := []Curve{
		{},
		{Ratio: []float64{1, 2}, RMult: []float64{1, 1}, TFactor: []float64{1, 1}},          // no 0
		{Ratio: []float64{0, 0}, RMult: []float64{1, 1}, TFactor: []float64{1, 1}},          // not ascending
		{Ratio: []float64{0, 1}, RMult: []float64{1}, TFactor: []float64{1, 1}},             // length
		{Ratio: []float64{0, 1}, RMult: []float64{1, 0}, TFactor: []float64{1, 1}},          // non-positive
		{Ratio: []float64{0, 1}, RMult: []float64{1, math.NaN()}, TFactor: []float64{1, 1}}, // NaN
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("bad curve %d accepted", i)
		}
	}
}

func TestAnalyticTablesValidate(t *testing.T) {
	for _, p := range []*tech.Params{tech.NMOS4(), tech.CMOS3()} {
		tb := AnalyticTables(p)
		if err := tb.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if tb.Source != "analytic" {
			t.Error("provenance wrong")
		}
	}
	// nMOS has no p-channel tables.
	tb := AnalyticTables(tech.NMOS4())
	if tb.RSquare[tech.PEnh][tech.Rise] != 0 {
		t.Error("nMOS analytic tables should have no p-channel entries")
	}
}

func TestByName(t *testing.T) {
	tb := AnalyticTables(tech.NMOS4())
	for _, name := range []string{"lumped", "rc", "slope", "rc-bounded", "distributed"} {
		if _, err := ByName(name, tb); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("bogus", tb); err == nil {
		t.Error("unknown model accepted")
	}
	if got := len(All(tb)); got != 3 {
		t.Errorf("All returned %d models", got)
	}
}

func TestLumpedDominatesRCOnChains(t *testing.T) {
	tb := AnalyticTables(tech.NMOS4())
	lumped, rc := NewLumped(tb), NewRC(tb)
	for n := 1; n <= 8; n++ {
		nw, st := passStage(n)
		dl := lumped.Evaluate(nw, st, 0).Delay
		dr := rc.Evaluate(nw, st, 0).Delay
		if dl < dr-1e-15 {
			t.Errorf("n=%d: lumped %g < rc %g", n, dl, dr)
		}
		if n == 1 && math.Abs(dl-dr) > 1e-15 {
			t.Errorf("n=1: lumped and rc must agree on single-element stages (%g vs %g)", dl, dr)
		}
	}
	// Asymptotic ratio approaches 2 on a uniform chain.
	nw, st := passStage(12)
	ratio := lumped.Evaluate(nw, st, 0).Delay / rc.Evaluate(nw, st, 0).Delay
	if ratio < 1.5 || ratio > 2.05 {
		t.Errorf("12-chain lumped/rc = %g, want in (1.5, 2.05)", ratio)
	}
}

func TestSlopeReducesToRCOnStepInput(t *testing.T) {
	tb := AnalyticTables(tech.NMOS4())
	rc, slope := NewRC(tb), NewSlope(tb)
	nw, st := passStage(3)
	dr := rc.Evaluate(nw, st, 0).Delay
	ds := slope.Evaluate(nw, st, 0).Delay
	if math.Abs(dr-ds) > 1e-15 {
		t.Errorf("step input: slope %g should equal rc %g", ds, dr)
	}
}

func TestSlopeMonotoneInInputSlope(t *testing.T) {
	// With monotone tables, slower inputs never make the stage faster.
	tb := AnalyticTables(tech.NMOS4())
	slope := NewSlope(tb)
	nw, st := passStage(2)
	err := quick.Check(func(a, b float64) bool {
		sa := math.Abs(a) * 1e-9
		sb := math.Abs(b) * 1e-9
		if sa > sb {
			sa, sb = sb, sa
		}
		da := slope.Evaluate(nw, st, sa).Delay
		db := slope.Evaluate(nw, st, sb).Delay
		return db >= da-1e-15
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

func TestDelayScalesWithTables(t *testing.T) {
	// Doubling every effective resistance doubles every model's delay.
	p := tech.NMOS4()
	tb := AnalyticTables(p)
	tb2 := AnalyticTables(p)
	for d := range tb2.RSquare {
		for tr := range tb2.RSquare[d] {
			tb2.RSquare[d][tr] *= 2
		}
	}
	nw, st := passStage(3)
	for i, m := range All(tb) {
		m2 := All(tb2)[i]
		d1 := m.Evaluate(nw, st, 0).Delay
		d2 := m2.Evaluate(nw, st, 0).Delay
		if math.Abs(d2-2*d1) > 1e-12*d1 {
			t.Errorf("%s: 2×R gave %g, want %g", m.Name(), d2, 2*d1)
		}
	}
}

func TestFastElmoreMatchesTree(t *testing.T) {
	// The no-allocation path-walk Elmore must agree exactly with the
	// reference RC-tree computation, including side loading and rscale.
	p := tech.NMOS4()
	nw := netlist.New("sidey", p)
	in, ctl := nw.Node("in"), nw.Node("ctl")
	nw.MarkInput(in)
	nw.MarkInput(ctl)
	prev := in
	for i := 0; i < 4; i++ {
		next := nw.Node(string(rune('a' + i)))
		nw.AddTrans(tech.NEnh, ctl, prev, next, 0, 0)
		// Hang a side branch off every other node.
		if i%2 == 0 {
			side := nw.Node(string(rune('w' + i)))
			always := nw.Node(string(rune('m' + i)))
			nw.MarkInput(always)
			nw.AddTrans(tech.NEnh, always, next, side, 0, 0)
			nw.AddCap(side, 30e-15)
		}
		prev = next
	}
	res := stage.FromNode(nw, in, tech.Rise, stage.Options{})
	tb := AnalyticTables(p)
	m := NewRC(tb)
	for _, st := range res.Stages {
		for _, rscale := range [][]float64{nil, scaleAt(len(st.Path), 0, 2.5), scaleAt(len(st.Path), len(st.Path)-1, 0.4)} {
			fast := m.elmore(nw, st, rscale)
			tree, idx := stageTree(tb, nw, st, rscale)
			ref := tree.Elmore(idx[len(idx)-1])
			if math.Abs(fast-ref) > 1e-12*ref+1e-20 {
				t.Errorf("stage %v rscale %v: fast %g vs tree %g", st, rscale, fast, ref)
			}
		}
	}
}

func scaleAt(n, at int, v float64) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = 1
	}
	if at >= 0 && at < n {
		s[at] = v
	}
	return s
}

func TestBoundedModelBounds(t *testing.T) {
	tb := AnalyticTables(tech.NMOS4())
	b := &Bounded{T: tb}
	nw, st := passStage(4)
	lo, hi, err := b.Bounds(nw, st)
	if err != nil {
		t.Fatal(err)
	}
	if !(lo <= hi) || lo < 0 {
		t.Errorf("bounds [%g, %g] malformed", lo, hi)
	}
	// The Elmore point estimate need not sit inside the 50% bounds, but
	// the interval must bracket ln2·TDe for a chain (single-dominant-pole
	// regime keeps it interior in practice).
	d := b.Evaluate(nw, st, 0).Delay
	if d <= 0 {
		t.Error("point estimate should be positive")
	}
}

func TestResultSlopesPositive(t *testing.T) {
	tb := AnalyticTables(tech.NMOS4())
	nw, st := passStage(3)
	for _, m := range All(tb) {
		r := m.Evaluate(nw, st, 1e-9)
		if r.Delay <= 0 || r.Slope <= 0 {
			t.Errorf("%s: non-positive result %+v", m.Name(), r)
		}
	}
}
