// Dense linear algebra for the modified-nodal-analysis equations. The
// circuits this simulator handles (characterization fixtures and benchmark
// cells, tens of nodes) are far below the size where sparse techniques pay
// off, so a dense LU with partial pivoting keeps the code small and the
// behaviour predictable.
package analog

import (
	"errors"
	"fmt"
	"math"
)

// matrix is a dense square matrix stored row-major.
type matrix struct {
	n int
	a []float64
}

func newMatrix(n int) *matrix {
	return &matrix{n: n, a: make([]float64, n*n)}
}

func (m *matrix) at(i, j int) float64     { return m.a[i*m.n+j] }
func (m *matrix) add(i, j int, v float64) { m.a[i*m.n+j] += v }
func (m *matrix) zero() {
	for i := range m.a {
		m.a[i] = 0
	}
}

// errSingular reports a matrix the solver could not factor; it usually
// means a floating node with no path to ground (gmin should prevent this).
var errSingular = errors.New("analog: singular MNA matrix")

// solveInPlace solves A·x = b by Gaussian elimination with partial
// pivoting, overwriting both the matrix and b; the solution is left in b.
func (m *matrix) solveInPlace(b []float64) error {
	n := m.n
	if len(b) != n {
		return fmt.Errorf("analog: rhs length %d does not match matrix size %d", len(b), n)
	}
	a := m.a
	for col := 0; col < n; col++ {
		// Pivot selection.
		piv, pmax := col, math.Abs(a[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r*n+col]); v > pmax {
				piv, pmax = r, v
			}
		}
		if pmax < 1e-30 {
			return fmt.Errorf("%w (pivot %d)", errSingular, col)
		}
		if piv != col {
			prow := a[piv*n : piv*n+n]
			crow := a[col*n : col*n+n]
			for k := range crow {
				prow[k], crow[k] = crow[k], prow[k]
			}
			b[piv], b[col] = b[col], b[piv]
		}
		// Eliminate below. Subslicing the pivot row and each target row
		// lets the compiler drop bounds checks from the inner loop.
		crow := a[col*n+col : col*n+n]
		inv := 1 / crow[0]
		bc := b[col]
		for r := col + 1; r < n; r++ {
			row := a[r*n+col : r*n+n]
			f := row[0] * inv
			if f == 0 {
				continue
			}
			// MNA rows are sparse (node degree + a few source entries);
			// skipping the pivot row's exact zeros subtracts nothing and
			// preserves the zero pattern for later columns.
			for k, cv := range crow {
				if cv != 0 {
					row[k] -= f * cv
				}
			}
			b[r] -= f * bc
		}
	}
	// Back substitution.
	for r := n - 1; r >= 0; r-- {
		row := a[r*n : r*n+n]
		s := b[r]
		for k := r + 1; k < n; k++ {
			s -= row[k] * b[k]
		}
		b[r] = s / row[r]
	}
	return nil
}
