package core

import (
	"testing"

	"repro/internal/delay"
	"repro/internal/gen"
	"repro/internal/switchsim"
	"repro/internal/tech"
)

// TestChipScaleAnalysis runs the verifier over the composed 16-bit chip
// with the standard directives: a whole-design integration test of stage
// caching, loop breaking, and deep-path relaxation.
func TestChipScaleAnalysis(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second whole-chip analysis")
	}
	p := tech.NMOS4()
	nw, err := gen.Chip(p, 16)
	if err != nil {
		t.Fatal(err)
	}
	fixed, lb := gen.ChipDirectives(16)
	var opts Options
	for _, name := range lb {
		n := nw.Lookup(name)
		if n == nil {
			t.Fatalf("directive node %s missing", name)
		}
		opts.LoopBreak = append(opts.LoopBreak, n)
	}
	a := New(nw, delay.NewSlope(delay.AnalyticTables(p)), opts)
	for name, v := range fixed {
		a.SetFixed(nw.Lookup(name), switchsim.FromBool(v == "1"))
	}
	for _, in := range nw.Inputs() {
		if _, ok := fixed[in.Name]; ok {
			continue
		}
		a.SetInputEvent(in, tech.Rise, 0, 0)
		a.SetInputEvent(in, tech.Fall, 0, 0)
	}
	if err := a.Run(); err != nil {
		t.Fatal(err)
	}
	if len(a.Unbounded) != 0 {
		t.Errorf("chip with directives should have no unbounded nodes, got %d", len(a.Unbounded))
	}
	ev, path := a.MaxArrival()
	if !ev.Valid {
		t.Fatal("no critical arrival")
	}
	// The critical path runs through the multiplier array (the deepest
	// structure) and must be a long, monotone chain.
	if len(path.Hops) < 30 {
		t.Errorf("critical path suspiciously short: %d hops", len(path.Hops))
	}
	for i := 1; i < len(path.Hops); i++ {
		if path.Hops[i].Event.T < path.Hops[i-1].Event.T {
			t.Fatalf("non-monotone critical path at hop %d", i)
		}
	}
	if a.StagesEvaluated() == 0 {
		t.Error("no stages evaluated")
	}
}
