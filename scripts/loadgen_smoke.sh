#!/bin/sh
# Load/chaos smoke for CI: cmd/loadgen drives a spawned crystald through
# ~100 scripted sessions of mixed sync/async traffic with response
# validation on, injects a mid-run SIGTERM + restart over the warm
# snapshot cache, and injects slow and failing async jobs. The run must
# finish with zero validation failures and zero hard errors (loadgen
# exits nonzero otherwise); the report must additionally show that the
# probes actually fired — validation pairs compared, the restart
# happened, warm-start creates occurred, chaos failures were absorbed.
#
# Usage: scripts/loadgen_smoke.sh (from the repo root). ~30s.
set -eu

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

go build -o "$TMP/crystald" ./cmd/crystald
go build -o "$TMP/loadgen" ./cmd/loadgen

"$TMP/loadgen" \
    -daemon "$TMP/crystald" \
    -port "${LOADGEN_PORT:-8961}" \
    -snapshot-dir "$TMP/snap" \
    -sessions 100 \
    -reuse 0.3 \
    -concurrency "${LOADGEN_SMOKE_CONCURRENCY:-16}" \
    -duration "${LOADGEN_SMOKE_DURATION:-12s}" \
    -max-sessions 48 \
    -validate \
    -restart-after 4s \
    -chaos-job-delay 1ms \
    -chaos-job-fail-every 11 \
    -out "$TMP/report.json"

# The exit code above already asserts zero validation failures / hard
# errors; now assert the fault probes genuinely fired.
jq -e '
    .validation.pairs > 0
    and .validation.failures == 0
    and .restarts == 1
    and .creates_warm > 0
    and .chaos_failures > 0
' "$TMP/report.json" > /dev/null || {
    echo "loadgen_smoke: probe coverage assertion failed:" >&2
    jq '{validation, restarts, creates_warm, creates_dedup, chaos_failures}' "$TMP/report.json" >&2
    exit 1
}

echo "loadgen_smoke: OK"
jq '{steps: [.steps[] | {concurrency, ops, throughput_ops, rejected, errors}], validation, restarts, creates_warm, chaos_failures}' "$TMP/report.json"
