// The stage database: a precomputed, shareable index of every stage the
// analyzer can ask for over one (network, sensitization) pair. Stage
// enumeration is static during an analysis — a trigger's stages never
// change — so the enumeration results are memoized here, slice-indexed by
// (element index, transition) instead of hashed, and built at most once
// per key under a sync.Once so any number of concurrent analyses can
// share one database without rebuilding or locking on the hot path.
//
// Databases are generational: an edit epoch never resets entries in
// place. Derive builds the next generation over the edited network,
// sharing the entry objects of untouched channel-connected groups and
// allocating fresh ones only for the dirty indexes, so analyzers still
// reading the previous generation — whose network is never mutated —
// always finish on a consistent snapshot.
package stage

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/netlist"
	"repro/internal/tech"
)

// DB is the shared stage database for one network under one sensitization
// oracle. Entries are built lazily on first access and are immutable
// afterwards; every accessor is safe for concurrent use. A DB built by one
// analysis run can be handed to later runs over the same network with the
// same static sensitization (core checks the Stamp before accepting one).
type DB struct {
	nw  *netlist.Network
	opt Options

	// Stamp identifies the sensitization state the database was built
	// under (the caller encodes static node values and enumeration
	// bounds). Consumers must not share a DB across different stamps.
	Stamp string
	// Epoch counts edit generations: 0 for a fresh database, predecessor
	// epoch + 1 for one built by Derive. Diagnostics only — correctness
	// comes from each generation owning its own immutable network.
	Epoch uint64

	through []*dbEntry    // (trans, transition) → stages through the device
	release []*dbEntry    // (node, transition) → stages driving the node
	from    []*dbEntry    // (node, transition) → stages fanning out of the node
	groups  []*groupEntry // trans → channel-connected group

	// turnOn / turnOff are the compiled consequence lists the event loop
	// consumes: per transistor, the full flat sequence of stages a
	// turn-on (through-stages, both transitions) or a turn-off (release
	// stages of every group member, paths through the device filtered
	// out) triggers, in exactly the order the nested per-entry iteration
	// produces. One slice walk replaces a group walk plus four memoized
	// lookups plus a per-stage membership filter per event. Always
	// rebuilt fresh by Derive (they are cheap concatenations of the
	// underlying — possibly shared — entries).
	turnOn  []*dbEntry // trans → compiled turn-on stages
	turnOff []*dbEntry // trans → compiled turn-off stages

	// capsOnce/caps snapshot NodeCap over the whole (immutable) network on
	// first enumeration, so stage construction — which reads node loading
	// once per path node and once per side branch, across hundreds of
	// thousands of stages — indexes a float array instead of re-walking
	// adjacency lists.
	capsOnce sync.Once
	caps     []float64

	truncated atomic.Bool
}

// dbEntry is one memoized enumeration result.
type dbEntry struct {
	once   sync.Once
	stages []*Stage
	trunc  bool
}

// groupEntry is one memoized channel group.
type groupEntry struct {
	once  sync.Once
	nodes []*netlist.Node
}

// newEntries allocates n entries in one backing array and returns the
// pointer slice the database indexes (pointers, not values, so Derive can
// share individual entries across generations).
func newEntries(n int) []*dbEntry {
	backing := make([]dbEntry, n)
	ptrs := make([]*dbEntry, n)
	for i := range backing {
		ptrs[i] = &backing[i]
	}
	return ptrs
}

func newGroupEntries(n int) []*groupEntry {
	backing := make([]groupEntry, n)
	ptrs := make([]*groupEntry, n)
	for i := range backing {
		ptrs[i] = &backing[i]
	}
	return ptrs
}

// NewDB creates an empty database for the network. opt.Oracle fixes the
// sensitization for every enumeration the database will ever perform.
func NewDB(nw *netlist.Network, opt Options) *DB {
	return &DB{
		nw:      nw,
		opt:     opt.fill(),
		through: newEntries(2 * len(nw.Trans)),
		release: newEntries(2 * len(nw.Nodes)),
		from:    newEntries(2 * len(nw.Nodes)),
		groups:  newGroupEntries(len(nw.Trans)),
		turnOn:  newEntries(len(nw.Trans)),
		turnOff: newEntries(len(nw.Trans)),
	}
}

// Network returns the network the database indexes.
func (db *DB) Network() *netlist.Network { return db.nw }

// Truncated reports whether any enumeration performed so far hit the
// MaxPaths/MaxDepth caps. With a shared database this is cumulative over
// every analysis that touched it.
func (db *DB) Truncated() bool { return db.truncated.Load() }

// enumOpt returns the enumeration options with the node-capacitance
// snapshot installed (built on first use — the network is immutable for
// the database's lifetime, so one sweep serves every enumeration).
func (db *DB) enumOpt() Options {
	db.capsOnce.Do(func() {
		caps := make([]float64, len(db.nw.Nodes))
		for i, n := range db.nw.Nodes {
			caps[i] = db.nw.NodeCap(n)
		}
		db.caps = caps
	})
	o := db.opt
	o.caps = db.caps
	return o
}

// Through returns the stages created when transistor t becomes conducting,
// targeting transition tr, plus whether that enumeration was truncated.
func (db *DB) Through(t *netlist.Trans, tr tech.Transition) ([]*Stage, bool) {
	e := db.through[2*t.Index+int(tr)]
	e.once.Do(func() {
		res := Through(db.nw, t, tr, db.enumOpt())
		e.stages, e.trunc = res.Stages, res.Truncated
		if res.Truncated {
			db.truncated.Store(true)
		}
	})
	return e.stages, e.trunc
}

// Release returns the stages that could drive node n with transition tr
// (the paths a released node may move along), plus truncation.
func (db *DB) Release(n *netlist.Node, tr tech.Transition) ([]*Stage, bool) {
	e := db.release[2*n.Index+int(tr)]
	e.once.Do(func() {
		res := ToNode(db.nw, n, tr, db.enumOpt())
		e.stages, e.trunc = res.Stages, res.Truncated
		if res.Truncated {
			db.truncated.Store(true)
		}
	})
	return e.stages, e.trunc
}

// From returns the stages created when node n itself transitions (an input
// event riding through conducting pass devices), plus truncation.
func (db *DB) From(n *netlist.Node, tr tech.Transition) ([]*Stage, bool) {
	e := db.from[2*n.Index+int(tr)]
	e.once.Do(func() {
		res := FromNode(db.nw, n, tr, db.enumOpt())
		e.stages, e.trunc = res.Stages, res.Truncated
		if res.Truncated {
			db.truncated.Store(true)
		}
	})
	return e.stages, e.trunc
}

// TurnOn returns the compiled turn-on consequence list of transistor t:
// the stages created when t becomes conducting, for both target
// transitions (Rise stages first), in the order the underlying Through
// entries enumerate them, plus cumulative truncation.
func (db *DB) TurnOn(t *netlist.Trans) ([]*Stage, bool) {
	return db.TurnOnIdx(t.Index)
}

// TurnOnIdx is TurnOn by transistor index (the compiled-network hot path).
func (db *DB) TurnOnIdx(ti int) ([]*Stage, bool) {
	e := db.turnOn[ti]
	e.once.Do(func() {
		t := db.nw.Trans[ti]
		rise, tr1 := db.Through(t, tech.Rise)
		fall, tr2 := db.Through(t, tech.Fall)
		e.trunc = tr1 || tr2
		if len(fall) == 0 {
			e.stages = rise // share the underlying entry's slice
		} else if len(rise) == 0 {
			e.stages = fall
		} else {
			e.stages = make([]*Stage, 0, len(rise)+len(fall))
			e.stages = append(e.stages, rise...)
			e.stages = append(e.stages, fall...)
		}
	})
	return e.stages, e.trunc
}

// TurnOff returns the compiled turn-off consequence list of transistor t:
// for every node the turn-off releases (the channel group), the stages
// that could still drive it — paths through t itself filtered out — in
// group order, Rise before Fall per member, plus cumulative truncation.
func (db *DB) TurnOff(t *netlist.Trans) ([]*Stage, bool) {
	return db.TurnOffIdx(t.Index)
}

// TurnOffIdx is TurnOff by transistor index.
func (db *DB) TurnOffIdx(ti int) ([]*Stage, bool) {
	e := db.turnOff[ti]
	e.once.Do(func() {
		t := db.nw.Trans[ti]
		group := db.Group(t)
		// Count first, then fill exactly: these lists are the largest
		// compiled structure in the database, and append-doubling across
		// tens of thousands of transistors wastes real memory.
		n := 0
		for _, m := range group {
			for _, tr := range []tech.Transition{tech.Rise, tech.Fall} {
				stages, trunc := db.Release(m, tr)
				e.trunc = e.trunc || trunc
				for _, st := range stages {
					if !st.UsesTrans(t) {
						n++
					}
				}
			}
		}
		if n == 0 {
			return
		}
		out := make([]*Stage, 0, n)
		for _, m := range group {
			for _, tr := range []tech.Transition{tech.Rise, tech.Fall} {
				stages, _ := db.Release(m, tr)
				for _, st := range stages {
					if st.UsesTrans(t) {
						continue // that path died with the device
					}
					out = append(out, st)
				}
			}
		}
		e.stages = out
	})
	return e.stages, e.trunc
}

// Group returns the non-source nodes channel-connected to either terminal
// of t through possibly-conducting transistors (t itself excluded),
// without expanding through strong sources — the set of nodes a turn-off
// of t releases.
func (db *DB) Group(t *netlist.Trans) []*netlist.Node {
	e := db.groups[t.Index]
	e.once.Do(func() {
		e.nodes = channelGroup(db.nw, t, db.opt.Oracle)
	})
	return e.nodes
}

// Derive builds the next-generation database over the edited network nw
// (a distinct object from this database's network — edits never mutate a
// generation an analysis has seen). Entries of untouched indexes are
// shared with this database: a shared entry already built keeps its
// stages; one still unbuilt is enumerated later by whichever generation
// first asks, and because the clean channel-connected groups are
// structurally identical in both networks the resulting stage values are
// the same either way. Dirty indexes get fresh, empty entries.
//
//   - opt supplies the new generation's sensitization oracle (the caller
//     re-settles statics after the edit) and must keep the same
//     enumeration bounds.
//   - dirtyTrans / dirtyNode are indexed by the NEW network's indexes;
//     true means the entry must be re-enumerated.
//   - oldTrans maps new transistor indexes to this generation's indexes
//     (-1 for transistors that did not exist before). Node indexes are
//     stable across edits, so nodes need no map — new nodes are simply
//     beyond the old range.
//
// The caller sets Stamp. Concurrent readers of the receiver are
// unaffected: Derive only copies entry pointers.
func (db *DB) Derive(nw *netlist.Network, opt Options, dirtyTrans, dirtyNode []bool, oldTrans []int) *DB {
	opt = opt.fill()
	next := &DB{
		nw:      nw,
		opt:     opt,
		Epoch:   db.Epoch + 1,
		through: newEntries(2 * len(nw.Trans)),
		release: newEntries(2 * len(nw.Nodes)),
		from:    newEntries(2 * len(nw.Nodes)),
		groups:  newGroupEntries(len(nw.Trans)),
		turnOn:  newEntries(len(nw.Trans)),
		turnOff: newEntries(len(nw.Trans)),
	}
	// Conservative: a truncated enumeration in a shared entry stays
	// truncated in the new generation.
	if db.truncated.Load() {
		next.truncated.Store(true)
	}
	for j := range nw.Trans {
		old := -1
		if j < len(oldTrans) {
			old = oldTrans[j]
		}
		if old < 0 || (j < len(dirtyTrans) && dirtyTrans[j]) {
			continue // keep the fresh entries
		}
		next.through[2*j] = db.through[2*old]
		next.through[2*j+1] = db.through[2*old+1]
		next.groups[j] = db.groups[old]
		// The compiled turn-on list depends only on the two through
		// entries, so it shares under the same condition. The turn-off
		// list also depends on the release entries of every group member,
		// whose dirtiness this loop cannot see — it is rebuilt lazily in
		// the new generation (a cheap concatenation of entries that are
		// themselves shared when clean).
		next.turnOn[j] = db.turnOn[old]
	}
	oldNodes := len(db.nw.Nodes)
	for j := range nw.Nodes {
		if j >= oldNodes || (j < len(dirtyNode) && dirtyNode[j]) {
			continue
		}
		next.release[2*j] = db.release[2*j]
		next.release[2*j+1] = db.release[2*j+1]
		next.from[2*j] = db.from[2*j]
		next.from[2*j+1] = db.from[2*j+1]
	}
	return next
}

// seenPool recycles the visited-marks scratch of channelGroup; on a
// chip-scale network a fresh per-call slice is tens of kilobytes times
// tens of thousands of groups, all garbage.
var seenPool sync.Pool

// channelGroup walks the channel graph from t's terminals.
func channelGroup(nw *netlist.Network, t *netlist.Trans, oracle Oracle) []*netlist.Node {
	var seen []bool
	if v := seenPool.Get(); v != nil {
		seen = v.([]bool)
	}
	if len(seen) < len(nw.Nodes) {
		seen = make([]bool, len(nw.Nodes))
	}
	var out []*netlist.Node
	var q []*netlist.Node
	defer func() {
		// The true marks are exactly the group members: clear those and
		// recycle, far cheaper than zeroing the whole slice.
		for _, n := range out {
			seen[n.Index] = false
		}
		seenPool.Put(seen)
	}()
	for _, m := range []*netlist.Node{t.A, t.B} {
		if m != nil && !m.IsSource() && !seen[m.Index] {
			seen[m.Index] = true
			out = append(out, m)
			q = append(q, m)
		}
	}
	for len(q) > 0 {
		n := q[0]
		q = q[1:]
		for _, tr := range n.Terms {
			if tr == t {
				continue
			}
			if oracle(tr) == Off {
				continue
			}
			o := tr.Other(n)
			if o == nil || seen[o.Index] || o.IsSource() {
				continue
			}
			seen[o.Index] = true
			out = append(out, o)
			q = append(q, o)
		}
	}
	return out
}

// Prewarm eagerly builds every entry an analysis can touch, fanning the
// enumeration out over the given number of workers (0 selects GOMAXPROCS).
// The closure matches the analyzer's access pattern: through-stages and
// channel groups for every gated device, release stages for every group
// member, and fan-out stages for every input with channel terminals.
// Prewarming is optional — entries not built here are still built lazily.
func (db *DB) Prewarm(workers int) {
	db.PrewarmMasked(workers, nil, nil)
}

// PrewarmMasked is Prewarm with a skip mask: transistors with
// skipTrans[i] true and inputs with skipNode[idx] true are left unbuilt.
// The hierarchical analyzer passes the devices and member-local inputs of
// stamped instances — their consequence lists are never consulted during
// a stamped drain, and on chip-scale grids they are the bulk of the
// enumeration cost and memory. Skipped entries still build lazily if an
// instance later detaches to flat analysis.
func (db *DB) PrewarmMasked(workers int, skipTrans, skipNode []bool) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(db.nw.Trans) {
		workers = len(db.nw.Trans)
	}
	if workers < 1 {
		workers = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(db.nw.Trans) {
					return
				}
				if skipTrans != nil && skipTrans[i] {
					continue
				}
				t := db.nw.Trans[i]
				if t.AlwaysOn() {
					continue
				}
				db.TurnOnIdx(i)  // builds both Through entries
				db.TurnOffIdx(i) // builds the group and its Release entries
			}
		}()
	}
	wg.Wait()
	for _, n := range db.nw.Inputs() {
		if skipNode != nil && skipNode[n.Index] {
			continue
		}
		if len(n.Terms) > 0 {
			for _, tr := range []tech.Transition{tech.Rise, tech.Fall} {
				db.From(n, tr)
			}
		}
	}
}
