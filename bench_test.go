// The benchmark harness: one benchmark per reconstructed table/figure of
// the paper's evaluation (E1–E8 in DESIGN.md), plus microbenchmarks of the
// analysis hot paths. Each experiment benchmark reports its headline
// numbers as custom metrics so `go test -bench` output doubles as the
// experiment record; the full formatted tables come from cmd/delaycmp.
package repro

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sync"
	"testing"
	"time"

	"repro/internal/analog"
	"repro/internal/charlib"
	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/experiments"
	"repro/internal/gen"
	"repro/internal/incremental"
	"repro/internal/netlist"
	"repro/internal/stage"
	"repro/internal/switchsim"
	"repro/internal/tech"
)

var (
	tablesOnce sync.Once
	charTables *delay.Tables
)

// tables returns the characterized tables for nMOS, computed once.
func tables(b *testing.B) *delay.Tables {
	b.Helper()
	tablesOnce.Do(func() {
		tb, err := charlib.Default(tech.NMOS4())
		if err != nil {
			panic(fmt.Sprintf("characterization failed: %v", err))
		}
		charTables = tb
	})
	return charTables
}

// meanAbsErr computes the mean absolute percent error of one model over a
// set of accuracy rows.
func meanAbsErr(rows []experiments.AccuracyRow, model string) float64 {
	if len(rows) == 0 {
		return 0
	}
	s := 0.0
	for _, r := range rows {
		s += math.Abs(r.Err(model))
	}
	return s / float64(len(rows))
}

// BenchmarkE1SlopeTables regenerates the slope-model characterization
// curves (figure E1): the cost of one full table build, with the measured
// step resistance reported.
func BenchmarkE1SlopeTables(b *testing.B) {
	p := tech.NMOS4()
	var tb *delay.Tables
	for i := 0; i < b.N; i++ {
		var err error
		tb, err = charlib.Characterize(p, charlib.Options{Ratios: []float64{0, 1, 4, 16}})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(tb.RSquare[tech.NEnh][tech.Fall], "Ωsq-nenh-fall")
	b.ReportMetric(tb.Curve(tech.NEnh, tech.Fall).MultAt(16), "rmult@16")
}

// BenchmarkE2ModelAccuracy reproduces the accuracy table (E2): all suite
// circuits under all three models versus the analog reference. Reported
// metrics are the per-model mean |error| in percent — the paper's headline
// comparison (slope ≈ 10–15%, lumped several times worse).
func BenchmarkE2ModelAccuracy(b *testing.B) {
	p := tech.NMOS4()
	tb := tables(b)
	var rows []experiments.AccuracyRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.E2ModelAccuracy(p, tb)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, m := range []string{"lumped", "rc", "slope"} {
		b.ReportMetric(meanAbsErr(rows, m), "%err-"+m)
	}
}

// BenchmarkE2ModelAccuracyCMOS repeats the accuracy table in the 3 µm
// complementary process: the model ranking must be technology-independent.
func BenchmarkE2ModelAccuracyCMOS(b *testing.B) {
	p := tech.CMOS3()
	tb, err := charlib.Default(p)
	if err != nil {
		b.Fatal(err)
	}
	var rows []experiments.AccuracyRow
	for i := 0; i < b.N; i++ {
		rows, err = experiments.E2ModelAccuracy(p, tb)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, m := range []string{"lumped", "rc", "slope"} {
		b.ReportMetric(meanAbsErr(rows, m), "%err-"+m)
	}
}

// BenchmarkE3PassChains reproduces the pass-chain scaling table (E3).
// The reported lumped/rc ratio at n=8 exhibits the lumped model's
// quadratic pessimism (→ 2 as n grows).
func BenchmarkE3PassChains(b *testing.B) {
	p := tech.NMOS4()
	tb := tables(b)
	var rows []experiments.AccuracyRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.E3PassChains(p, tb, []int{1, 2, 4, 8})
		if err != nil {
			b.Fatal(err)
		}
	}
	last := rows[len(rows)-1]
	b.ReportMetric(last.Model["lumped"]/last.Model["rc"], "lumped/rc@n8")
	b.ReportMetric(meanAbsErr(rows, "rc"), "%err-rc")
	b.ReportMetric(meanAbsErr(rows, "lumped"), "%err-lumped")
}

// BenchmarkE4Fanout reproduces the delay-versus-fanout figure (E4): delay
// linear in load for models and reference alike. The linearity metric is
// the reference delay-per-load between the extreme points.
func BenchmarkE4Fanout(b *testing.B) {
	p := tech.NMOS4()
	tb := tables(b)
	var rows []experiments.AccuracyRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.E4Fanout(p, tb, []int{1, 4, 16})
		if err != nil {
			b.Fatal(err)
		}
	}
	first, last := rows[0], rows[len(rows)-1]
	slope := (last.Analog - first.Analog) / (last.X - first.X)
	b.ReportMetric(slope*1e12, "ps-per-load")
	b.ReportMetric(meanAbsErr(rows, "slope"), "%err-slope")
}

// BenchmarkE5InputSlope reproduces the delay-versus-input-slope figure
// (E5): only the slope model follows the reference.
func BenchmarkE5InputSlope(b *testing.B) {
	p := tech.NMOS4()
	tb := tables(b)
	var rows []experiments.AccuracyRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.E5InputSlope(p, tb, []float64{0.1e-9, 4e-9, 20e-9})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(meanAbsErr(rows, "slope"), "%err-slope")
	b.ReportMetric(meanAbsErr(rows, "rc"), "%err-rc")
}

// BenchmarkE6Throughput reproduces the verifier capacity table (E6): the
// standard block set analyzed under the slope model; reported metric is
// aggregate transistors per second of analysis.
func BenchmarkE6Throughput(b *testing.B) {
	p := tech.NMOS4()
	tb := tables(b)
	var rows []experiments.ThroughputRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.E6Throughput(p, tb, "slope")
		if err != nil {
			b.Fatal(err)
		}
	}
	totalTrans, totalWall := 0.0, 0.0
	for _, r := range rows {
		totalTrans += float64(r.Trans)
		totalWall += r.Wall.Seconds()
	}
	b.ReportMetric(totalTrans/totalWall, "trans/s")
	b.ReportMetric(float64(len(rows)), "blocks")
}

// BenchmarkE6Capacity is the capacity point of E6: a single ~11k-transistor
// array multiplier analyzed end to end (the scale of a full custom block
// of the era). Reported metric: transistors per second.
func BenchmarkE6Capacity(b *testing.B) {
	p := tech.NMOS4()
	tb := delay.AnalyticTables(p)
	var trans int
	for i := 0; i < b.N; i++ {
		nw, err := gen.ArrayMultiplier(p, 16)
		if err != nil {
			b.Fatal(err)
		}
		trans = nw.Stats().Trans
		a := core.New(nw, delay.NewSlope(tb), core.Options{})
		for _, in := range nw.Inputs() {
			a.SetInputEvent(in, tech.Rise, 0, 0)
			a.SetInputEvent(in, tech.Fall, 0, 0)
		}
		if err := a.Run(); err != nil {
			b.Fatal(err)
		}
		if ev, _ := a.MaxArrival(); !ev.Valid {
			b.Fatal("no arrival")
		}
	}
	b.ReportMetric(float64(trans), "transistors")
	b.ReportMetric(float64(trans)/b.Elapsed().Seconds()*float64(b.N), "trans/s")
}

// BenchmarkE6ChipScale is the whole-chip point of E6: the composed
// processor datapath (register file + ALU + shifter + multiplier +
// address adder + control PLA) analyzed with the same directives a
// Crystal user would supply — the reproduction stand-in for the paper's
// real-chip case studies. The headline benchmark pins the strict-serial
// drain (workers = 1) so its history stays comparable across machines;
// BenchmarkE6ChipScaleWorkers sweeps the parallel drain.
func BenchmarkE6ChipScale(b *testing.B) { benchE6Chip(b, 1) }

// BenchmarkE6ChipScaleWorkers runs the same whole-chip analysis under the
// speculative parallel drain at increasing worker counts (results are
// bit-identical at every setting — the sweep measures single-run scaling,
// recorded by scripts/bench.sh into BENCH_3.json).
func BenchmarkE6ChipScaleWorkers(b *testing.B) {
	counts := []int{1, 2, 4}
	if g := runtime.GOMAXPROCS(0); g != 1 && g != 2 && g != 4 {
		counts = append(counts, g)
	}
	for _, w := range counts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) { benchE6Chip(b, w) })
	}
}

func benchE6Chip(b *testing.B, workers int) {
	p := tech.NMOS4()
	tb := delay.AnalyticTables(p)
	var trans, stages int
	var crit float64
	var drain core.DrainStats
	for i := 0; i < b.N; i++ {
		nw, err := gen.Chip(p, 32)
		if err != nil {
			b.Fatal(err)
		}
		trans = nw.Stats().Trans
		fixed, loopBreak := gen.ChipDirectives(32)
		opts := core.Options{Workers: workers}
		for _, name := range loopBreak {
			if n := nw.Lookup(name); n != nil {
				opts.LoopBreak = append(opts.LoopBreak, n)
			}
		}
		a := core.New(nw, delay.NewSlope(tb), opts)
		for name, v := range fixed {
			n := nw.Lookup(name)
			if n == nil {
				b.Fatalf("missing directive node %s", name)
			}
			a.SetFixed(n, switchsim.FromBool(v == "1"))
		}
		for _, in := range nw.Inputs() {
			if _, isFixed := fixed[in.Name]; isFixed {
				continue
			}
			a.SetInputEvent(in, tech.Rise, 0, 0)
			a.SetInputEvent(in, tech.Fall, 0, 0)
		}
		if err := a.Run(); err != nil {
			b.Fatal(err)
		}
		ev, _ := a.MaxArrival()
		if !ev.Valid {
			b.Fatal("no arrival")
		}
		crit = ev.T
		stages = a.StagesEvaluated()
		drain = a.DrainStats()
	}
	b.ReportMetric(float64(trans), "transistors")
	b.ReportMetric(float64(stages), "stages")
	b.ReportMetric(crit*1e9, "ns-crit")
	b.ReportMetric(float64(trans)/b.Elapsed().Seconds()*float64(b.N), "trans/s")
	// Parallel drains publish their fence counters so bench.sh can record
	// them (BENCH_5) even when the scaling itself is degenerate.
	if workers > 1 && drain.Batches > 0 {
		b.ReportMetric(float64(drain.BatchItems)/float64(drain.Batches), "batch-size")
		b.ReportMetric(float64(drain.FenceStalls), "fence-stalls")
		b.ReportMetric(float64(drain.CommitDepth), "commit-depth")
		if drain.SpecLive > 0 {
			b.ReportMetric(float64(drain.SpecUsed)/float64(drain.SpecLive), "occupancy")
		}
		b.ReportMetric(float64(drain.Regions), "regions")
	}
}

// BenchmarkE6ReorderAB is the interleaved locality A/B: per iteration it
// analyzes the same chip-scale network twice on the same runner — once
// with the RCM row reordering, once with the identity layout, order
// alternating so neither side systematically inherits a warm cache — and
// reports the per-side median analysis times plus the improvement. The
// network is built once; only compile + seed + drain is timed, which is
// exactly the region the permutation can affect. Recorded by
// scripts/bench.sh into BENCH_5.json.
func BenchmarkE6ReorderAB(b *testing.B) {
	p := tech.NMOS4()
	tb := delay.AnalyticTables(p)
	nw, err := gen.Chip(p, 32)
	if err != nil {
		b.Fatal(err)
	}
	fixed, loopBreak := gen.ChipDirectives(32)

	analyze := func(noReorder bool) (time.Duration, float64) {
		opts := core.Options{Workers: 1, NoReorder: noReorder}
		for _, name := range loopBreak {
			if n := nw.Lookup(name); n != nil {
				opts.LoopBreak = append(opts.LoopBreak, n)
			}
		}
		start := time.Now()
		a := core.New(nw, delay.NewSlope(tb), opts)
		for name, v := range fixed {
			n := nw.Lookup(name)
			if n == nil {
				b.Fatalf("missing directive node %s", name)
			}
			a.SetFixed(n, switchsim.FromBool(v == "1"))
		}
		for _, in := range nw.Inputs() {
			if _, isFixed := fixed[in.Name]; isFixed {
				continue
			}
			a.SetInputEvent(in, tech.Rise, 0, 0)
			a.SetInputEvent(in, tech.Fall, 0, 0)
		}
		if err := a.Run(); err != nil {
			b.Fatal(err)
		}
		d := time.Since(start)
		ev, _ := a.MaxArrival()
		if !ev.Valid {
			b.Fatal("no arrival")
		}
		return d, ev.T
	}

	var on, off []time.Duration
	for i := 0; i < b.N; i++ {
		var dOn, dOff time.Duration
		var tOn, tOff float64
		if i%2 == 0 {
			dOff, tOff = analyze(true)
			dOn, tOn = analyze(false)
		} else {
			dOn, tOn = analyze(false)
			dOff, tOff = analyze(true)
		}
		if tOn != tOff {
			b.Fatalf("critical arrival differs: reorder on %g vs off %g", tOn, tOff)
		}
		on = append(on, dOn)
		off = append(off, dOff)
	}
	medianNs := func(ds []time.Duration) float64 {
		s := append([]time.Duration(nil), ds...)
		for i := 1; i < len(s); i++ {
			for j := i; j > 0 && s[j] < s[j-1]; j-- {
				s[j], s[j-1] = s[j-1], s[j]
			}
		}
		return float64(s[len(s)/2].Nanoseconds())
	}
	mOn, mOff := medianNs(on), medianNs(off)
	b.ReportMetric(mOn, "ns-reorder-on")
	b.ReportMetric(mOff, "ns-reorder-off")
	b.ReportMetric((mOff-mOn)/mOff*100, "improvement-pct")
}

// BenchmarkE6HierAB is the hierarchical-macromodel A/B (BENCH_9): per
// iteration it analyzes the E6-XL replicated-tile chip (chip:32,10 —
// ten tile instances sharing the opcode bus) twice on the same runner,
// once with hierarchical stamping and once flat, order alternating, and
// asserts the critical arrivals identical — the A/B form of the
// bit-identity contract. Reported metrics: per-side median wall time,
// the wall speedup, the stage-evaluation reduction (the deterministic,
// hardware-independent form of the macromodel win: stamped interiors
// evaluate zero stages), and the instance/stamped provenance counts.
//
// Both arms raise MaxEventsPerNode above the 150-round default: the
// 32-bit multiplier's reconvergent carry logic legitimately needs more
// propagation rounds, and a guard cutoff inside a tile conservatively
// unstamps its whole class (the cutoff point is order-dependent). The
// same limit on both sides keeps the arms comparable and bit-identical.
func BenchmarkE6HierAB(b *testing.B) {
	const gridW, gridTiles = 32, 10
	const eventGuard = 1000
	p := tech.NMOS4()
	tb := delay.AnalyticTables(p)
	nw, err := gen.ChipGrid(p, gridW, gridTiles)
	if err != nil {
		b.Fatal(err)
	}
	fixed, loopBreak := gen.ChipGridDirectives(gridW, gridTiles)

	var instances, stamped int
	analyze := func(hier bool) (time.Duration, float64, int) {
		opts := core.Options{Workers: 1, Hier: hier, MaxEventsPerNode: eventGuard}
		for _, name := range loopBreak {
			if n := nw.Lookup(name); n != nil {
				opts.LoopBreak = append(opts.LoopBreak, n)
			}
		}
		start := time.Now()
		a := core.New(nw, delay.NewSlope(tb), opts)
		for name, v := range fixed {
			n := nw.Lookup(name)
			if n == nil {
				b.Fatalf("missing directive node %s", name)
			}
			a.SetFixed(n, switchsim.FromBool(v == "1"))
		}
		for _, in := range nw.Inputs() {
			if _, isFixed := fixed[in.Name]; isFixed {
				continue
			}
			a.SetInputEvent(in, tech.Rise, 0, 0)
			a.SetInputEvent(in, tech.Fall, 0, 0)
		}
		if err := a.Run(); err != nil {
			b.Fatal(err)
		}
		d := time.Since(start)
		ev, _ := a.MaxArrival()
		if !ev.Valid {
			b.Fatal("no arrival")
		}
		if hier {
			hs := a.HierStats()
			instances, stamped = hs.Instances, hs.Stamped
			if stamped == 0 {
				b.Fatal("hierarchical analysis stamped nothing on the tiled grid")
			}
		}
		return d, ev.T, a.StagesEvaluated()
	}

	var on, off []time.Duration
	var stagesOn, stagesOff int
	for i := 0; i < b.N; i++ {
		var dOn, dOff time.Duration
		var tOn, tOff float64
		if i%2 == 0 {
			dOff, tOff, stagesOff = analyze(false)
			dOn, tOn, stagesOn = analyze(true)
		} else {
			dOn, tOn, stagesOn = analyze(true)
			dOff, tOff, stagesOff = analyze(false)
		}
		if tOn != tOff {
			b.Fatalf("critical arrival differs: hier on %g vs off %g", tOn, tOff)
		}
		on = append(on, dOn)
		off = append(off, dOff)
	}
	medianNs := func(ds []time.Duration) float64 {
		s := append([]time.Duration(nil), ds...)
		for i := 1; i < len(s); i++ {
			for j := i; j > 0 && s[j] < s[j-1]; j-- {
				s[j], s[j-1] = s[j-1], s[j]
			}
		}
		return float64(s[len(s)/2].Nanoseconds())
	}
	mOn, mOff := medianNs(on), medianNs(off)
	b.ReportMetric(mOn, "ns-hier-on")
	b.ReportMetric(mOff, "ns-hier-off")
	b.ReportMetric(mOff/mOn, "speedup")
	b.ReportMetric(float64(stagesOff)/float64(stagesOn), "stage-reduction")
	b.ReportMetric(float64(instances), "instances")
	b.ReportMetric(float64(stamped), "stamped")
	b.ReportMetric(float64(nw.Stats().Trans), "transistors")
}

// BenchmarkHierXL is the BENCH_9 scale point: the chip:64,40 grid (~2.4M
// transistors, 40 tile instances) analyzed once with hierarchical
// stamping at full drain parallelism. Flat analysis at this scale is
// minutes of wall time, so only the hier arm runs; the recorded metrics
// are the wall time, the live heap after the run (the RSS-sublinearity
// evidence: stamped interiors carry copied events but no stage
// enumerations or history), and the provenance counts.
func BenchmarkHierXL(b *testing.B) {
	const gridW, gridTiles = 64, 40
	p := tech.NMOS4()
	tb := delay.AnalyticTables(p)
	nw, err := gen.ChipGrid(p, gridW, gridTiles)
	if err != nil {
		b.Fatal(err)
	}
	fixed, loopBreak := gen.ChipGridDirectives(gridW, gridTiles)
	var instances, stamped, trans int
	var heapMB float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// 64-bit carry logic needs even more propagation rounds than the
		// 32-bit A/B; see BenchmarkE6HierAB on why the guard must not fire.
		opts := core.Options{Workers: 0, Hier: true, MaxEventsPerNode: 4000}
		for _, name := range loopBreak {
			if n := nw.Lookup(name); n != nil {
				opts.LoopBreak = append(opts.LoopBreak, n)
			}
		}
		a := core.New(nw, delay.NewSlope(tb), opts)
		for name, v := range fixed {
			n := nw.Lookup(name)
			if n == nil {
				b.Fatalf("missing directive node %s", name)
			}
			a.SetFixed(n, switchsim.FromBool(v == "1"))
		}
		for _, in := range nw.Inputs() {
			if _, isFixed := fixed[in.Name]; isFixed {
				continue
			}
			a.SetInputEvent(in, tech.Rise, 0, 0)
			a.SetInputEvent(in, tech.Fall, 0, 0)
		}
		if err := a.Run(); err != nil {
			b.Fatal(err)
		}
		ev, _ := a.MaxArrival()
		if !ev.Valid {
			b.Fatal("no arrival")
		}
		if len(a.Unbounded) != 0 {
			b.Fatalf("feedback guard fired on %d nodes; raise MaxEventsPerNode", len(a.Unbounded))
		}
		hs := a.HierStats()
		instances, stamped = hs.Instances, hs.Stamped
		if stamped == 0 {
			b.Fatal("hierarchical analysis stamped nothing on the XL grid")
		}
		trans = nw.Stats().Trans
		b.StopTimer()
		var ms runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms)
		heapMB = float64(ms.HeapAlloc) / 1e6
		b.StartTimer()
	}
	b.ReportMetric(float64(trans), "transistors")
	b.ReportMetric(float64(instances), "instances")
	b.ReportMetric(float64(stamped), "stamped")
	b.ReportMetric(heapMB, "heapMB")
}

// BenchmarkE6Incremental measures the designer loop on the chip-scale
// design: after one full analysis, each iteration applies a small localized
// edit batch (output-driver geometry and load tweaks — the classic "widen
// the driver, re-verify" step) and brings the timing up to date with
// Reanalyze. Reported metrics are the dirty fraction the invalidation plan
// computed and the wall-clock speedup of one incremental update over the
// initial full analysis.
func BenchmarkE6Incremental(b *testing.B) {
	p := tech.NMOS4()
	tb := delay.AnalyticTables(p)
	nw, err := gen.Chip(p, 32)
	if err != nil {
		b.Fatal(err)
	}
	fixed, loopBreak := gen.ChipDirectives(32)
	var opts core.Options
	for _, name := range loopBreak {
		if n := nw.Lookup(name); n != nil {
			opts.LoopBreak = append(opts.LoopBreak, n)
		}
	}
	a := core.New(nw, delay.NewSlope(tb), opts)
	for name, v := range fixed {
		a.SetFixed(nw.Lookup(name), switchsim.FromBool(v == "1"))
	}
	for _, in := range nw.Inputs() {
		if _, isFixed := fixed[in.Name]; isFixed {
			continue
		}
		a.SetInputEvent(in, tech.Rise, 0, 0)
		a.SetInputEvent(in, tech.Fall, 0, 0)
	}
	fullStart := time.Now()
	if err := a.Run(); err != nil {
		b.Fatal(err)
	}
	fullNs := float64(time.Since(fullStart).Nanoseconds())

	var dirtyFrac float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Alternate the tweaks so every iteration really changes the
		// network (and the net drift over the run is zero). The batch
		// reloads every multiplier product and address output — a ~1%
		// slice of the chip, the scale of one placement iteration.
		sign := float64(1 - 2*(i%2))
		var edits []incremental.Edit
		for j := 0; j < 32; j++ {
			edits = append(edits,
				incremental.Edit{Kind: incremental.AddCap, Node: fmt.Sprintf("prod%d", j), Cap: sign * 20e-15},
				incremental.Edit{Kind: incremental.AddCap, Node: fmt.Sprintf("ea%d", j), Cap: sign * 20e-15})
		}
		edits = append(edits, incremental.Edit{Kind: incremental.AddCap, Node: "au_cout", Cap: sign * 10e-15})
		stats, err := a.Reanalyze(edits)
		if err != nil {
			b.Fatal(err)
		}
		if stats.Full {
			b.Fatalf("fell back to full analysis: %s (dirty %.2f)", stats.Reason, stats.DirtyFrac)
		}
		dirtyFrac = stats.DirtyFrac
	}
	b.StopTimer()
	incNs := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	b.ReportMetric(100*dirtyFrac, "%dirty")
	b.ReportMetric(fullNs/incNs, "speedup-vs-full")
}

// BenchmarkE7CriticalPaths reproduces the per-model critical path table
// (E7) on the datapath blocks; reported metric is the slope-model critical
// arrival of the 16-bit ripple adder.
func BenchmarkE7CriticalPaths(b *testing.B) {
	p := tech.NMOS4()
	tb := tables(b)
	var rows []experiments.CriticalRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.E7CriticalPaths(p, tb)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Block == "ripple-16" {
			b.ReportMetric(r.Arrival["slope"]*1e9, "ns-ripple16-slope")
			b.ReportMetric(r.Arrival["lumped"]/r.Arrival["rc"], "lumped/rc")
		}
	}
}

// BenchmarkE9PolyWire reproduces the resistive-interconnect scaling table
// (E9): the lumped model's error grows with wire length while the
// distributed estimate stays flat — the Penfield–Rubinstein motivation.
func BenchmarkE9PolyWire(b *testing.B) {
	p := tech.NMOS4()
	tb := tables(b)
	var rows []experiments.AccuracyRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.E9PolyWire(p, tb, []int{1, 3, 5})
		if err != nil {
			b.Fatal(err)
		}
	}
	first, last := rows[0], rows[len(rows)-1]
	b.ReportMetric(last.Err("lumped")-first.Err("lumped"), "%err-growth-lumped")
	b.ReportMetric(meanAbsErr(rows, "rc"), "%err-rc")
}

// BenchmarkE8RCBounds reproduces the RC-bound ablation (E8): RPH bound
// containment of the analog reference on random trees, and the relative
// width of the certificate interval.
func BenchmarkE8RCBounds(b *testing.B) {
	var rows []experiments.RCBoundsRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.E8RCBounds(12, 10, 2024)
		if err != nil {
			b.Fatal(err)
		}
	}
	contained, width := 0.0, 0.0
	for _, r := range rows {
		if r.Contained {
			contained++
		}
		width += (r.Upper - r.Lower) / r.Analog
	}
	b.ReportMetric(contained/float64(len(rows)), "containment")
	b.ReportMetric(width/float64(len(rows)), "relwidth")
}

// --- Ingest benchmarks (parse throughput and snapshot load) -----------------

var (
	ingestOnce  sync.Once
	ingestSim   []byte
	ingestSnap  []byte
	ingestTrans int
)

// ingestCorpus emits the E6 chip (the largest generated design) as .sim
// text once, along with its .simx snapshot, so every ingest benchmark
// measures the same chip-scale input: ~1 MB of netlist.
func ingestCorpus(b *testing.B) {
	b.Helper()
	ingestOnce.Do(func() {
		p := tech.NMOS4()
		nw, err := gen.Chip(p, 32)
		if err != nil {
			panic(err)
		}
		var buf bytes.Buffer
		if err := netlist.WriteSim(&buf, nw); err != nil {
			panic(err)
		}
		ingestSim = buf.Bytes()
		// Snapshot the parsed form so node indexing matches what the
		// parse benchmarks build (generator order differs).
		parsed, err := netlist.ReadSimParallel("chip", p, bytes.NewReader(ingestSim), 1)
		if err != nil {
			panic(err)
		}
		ingestTrans = len(parsed.Trans)
		var snap bytes.Buffer
		if err := netlist.WriteSnapshot(&snap, parsed, sha256.Sum256(ingestSim)); err != nil {
			panic(err)
		}
		ingestSnap = snap.Bytes()
	})
}

// benchIngestParse measures the cold half of the ingest pipeline as
// LoadSimFile runs it: parse plus the structural Check (a snapshot is
// only ever written after Check passes, so a warm load skips both).
func benchIngestParse(b *testing.B, workers int) {
	ingestCorpus(b)
	p := tech.NMOS4()
	b.SetBytes(int64(len(ingestSim)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw, err := netlist.ReadSimParallel("chip", p, bytes.NewReader(ingestSim), workers)
		if err != nil {
			b.Fatal(err)
		}
		if err := nw.Check(); err != nil {
			b.Fatal(err)
		}
		if len(nw.Trans) != ingestTrans {
			b.Fatalf("parsed %d transistors, want %d", len(nw.Trans), ingestTrans)
		}
	}
	perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	b.ReportMetric(perOp/float64(ingestTrans), "ns/transistor")
	b.ReportMetric(float64(len(ingestSim))/perOp*1e9/1e6, "MB/s")
}

// BenchmarkIngestParse measures .sim parse throughput of the chip-scale
// netlist: the strict-serial parser and the chunked parallel parser at
// increasing worker counts (results are byte-identical at every count;
// scripts/bench.sh records the sweep into BENCH_4.json).
func BenchmarkIngestParse(b *testing.B) {
	counts := []int{1, 2, 4}
	if g := runtime.GOMAXPROCS(0); g != 1 && g != 2 && g != 4 {
		counts = append(counts, g)
	}
	for _, w := range counts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) { benchIngestParse(b, w) })
	}
}

// BenchmarkIngestSnapshotLoad measures decoding the same chip from its
// binary .simx snapshot — the warm-start path that replaces the parse.
// Compare ns/op against BenchmarkIngestParse/workers=1 for the
// snapshot-vs-parse speedup.
func BenchmarkIngestSnapshotLoad(b *testing.B) {
	ingestCorpus(b)
	p := tech.NMOS4()
	wantHash := sha256.Sum256(ingestSim)
	b.SetBytes(int64(len(ingestSnap)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw, hash, err := netlist.ReadSnapshot(bytes.NewReader(ingestSnap), p)
		if err != nil {
			b.Fatal(err)
		}
		if hash != wantHash || len(nw.Trans) != ingestTrans {
			b.Fatal("snapshot decoded wrong network")
		}
	}
	perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	b.ReportMetric(perOp/float64(ingestTrans), "ns/transistor")
	b.ReportMetric(float64(len(ingestSnap))/perOp*1e9/1e6, "MB/s")
}

var (
	ingestXLOnce  sync.Once
	ingestXLV1    string // v1-format .simx path
	ingestXLV2    string // v2-format .simx path
	ingestXLHash  [32]byte
	ingestXLTrans int
	ingestXLNodes int
)

// ingestXLCorpus materializes the E6-XL scale point (chip:32,10 — 100k+
// nodes, ~182k transistors) once, persisted in both snapshot formats so
// BENCH_7 compares mmap ingest against the v1 heap decoder on identical
// content.
func ingestXLCorpus(b *testing.B) {
	b.Helper()
	ingestXLOnce.Do(func() {
		p := tech.NMOS4()
		nw, err := gen.ChipGrid(p, 32, 10)
		if err != nil {
			panic(err)
		}
		var buf bytes.Buffer
		if err := netlist.WriteSim(&buf, nw); err != nil {
			panic(err)
		}
		parsed, err := netlist.ReadSimParallel("chip-xl", p, bytes.NewReader(buf.Bytes()), 0)
		if err != nil {
			panic(err)
		}
		ingestXLHash = sha256.Sum256(buf.Bytes())
		ingestXLTrans = len(parsed.Trans)
		ingestXLNodes = len(parsed.Nodes)
		dir, err := os.MkdirTemp("", "ingestxl")
		if err != nil {
			panic(err)
		}
		ingestXLV1 = filepath.Join(dir, "xl.v1.simx")
		ingestXLV2 = filepath.Join(dir, "xl.v2.simx")
		f, err := os.Create(ingestXLV1)
		if err != nil {
			panic(err)
		}
		if err := netlist.WriteSnapshotV1(f, parsed, ingestXLHash); err != nil {
			panic(err)
		}
		if err := f.Close(); err != nil {
			panic(err)
		}
		if err := netlist.WriteSnapshotFile(ingestXLV2, parsed, ingestXLHash); err != nil {
			panic(err)
		}
	})
}

// BenchmarkIngestXL is the BENCH_7 load comparison on the 100k+ node
// chip: the mmap + slice-cast v2 path against heap decodes of both
// formats. Each iteration performs a complete cold load from disk —
// open/read, validate (both CRCs), build the Network — and discards it;
// scripts/bench.sh records mmap-vs-v1decode as the BENCH_7 speedup.
func BenchmarkIngestXL(b *testing.B) {
	ingestXLCorpus(b)
	p := tech.NMOS4()
	check := func(b *testing.B, nw *netlist.Network, hash [32]byte) {
		if hash != ingestXLHash || len(nw.Trans) != ingestXLTrans || len(nw.Nodes) != ingestXLNodes {
			b.Fatal("loaded wrong network")
		}
	}
	// Every arm runs with the collector quiesced: automatic collection
	// is disabled for the benchmark's duration and each iteration
	// instead collects the previous iteration's dead graph explicitly,
	// outside the timer. Each load allocates a ~30 MB network graph
	// from a near-empty live heap, so under the default pacing every
	// iteration spends more time marking and write-barriering the
	// half-built graph than loading it — noise that scales with the
	// pacer's mood, not with either loader. The same discipline applies
	// to every arm, so the ratio is load-vs-load.
	oldGC := debug.SetGCPercent(-1)
	defer debug.SetGCPercent(oldGC)
	// Two back-to-back cycles: the first marks and frees the dead graph,
	// the second's sweep-termination phase finishes sweeping it, so no
	// sweep debt is paid by the next load's allocations inside the timer.
	quiesce := func(b *testing.B) {
		b.StopTimer()
		runtime.GC()
		runtime.GC()
		b.StartTimer()
	}
	b.Run("mmap", func(b *testing.B) {
		if !netlist.MmapSupported {
			b.Skip("no mmap on this platform")
		}
		for i := 0; i < b.N; i++ {
			quiesce(b)
			m, err := netlist.OpenMapped(ingestXLV2, p)
			if err != nil {
				b.Fatal(err)
			}
			check(b, m.Net, m.SourceHash)
			// Nothing from the view escapes the iteration, so unmapping
			// is safe here (unlike in the CLIs, which keep the mapping
			// for the process lifetime).
			if err := m.Close(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(ingestXLNodes), "ns/node")
	})
	for _, arm := range []struct{ name, path string }{
		{"v1decode", ingestXLV1},
		{"v2decode", ingestXLV2},
	} {
		b.Run(arm.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				quiesce(b)
				data, err := os.ReadFile(arm.path)
				if err != nil {
					b.Fatal(err)
				}
				nw, hash, err := netlist.ReadSnapshot(bytes.NewReader(data), p)
				if err != nil {
					b.Fatal(err)
				}
				check(b, nw, hash)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(ingestXLNodes), "ns/node")
		})
	}
}

// --- Microbenchmarks of the analysis hot paths ------------------------------

// BenchmarkStageExtraction measures worst-case stage enumeration through a
// NAND stack trigger.
func BenchmarkStageExtraction(b *testing.B) {
	p := tech.NMOS4()
	nw, err := gen.ALU(p, 4)
	if err != nil {
		b.Fatal(err)
	}
	trig := nw.Trans[len(nw.Trans)/2]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stage.Through(nw, trig, tech.Fall, stage.Options{})
	}
}

// BenchmarkSwitchsimSettle measures full-network settling of an 8-bit ALU
// after an input flip.
func BenchmarkSwitchsimSettle(b *testing.B) {
	p := tech.NMOS4()
	nw, err := gen.ALU(p, 8)
	if err != nil {
		b.Fatal(err)
	}
	s := switchsim.New(nw)
	s.SetInputName("fadd", switchsim.V1)
	s.Settle()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SetInputName("a0", switchsim.FromBool(i%2 == 0))
		s.Settle()
	}
}

// BenchmarkAnalyzerRipple8 measures a complete verifier run (seeding,
// sensitization, propagation, tracing) on an 8-bit ripple adder.
func BenchmarkAnalyzerRipple8(b *testing.B) {
	p := tech.NMOS4()
	tb := delay.AnalyticTables(p)
	for i := 0; i < b.N; i++ {
		nw, err := gen.RippleAdder(p, 8)
		if err != nil {
			b.Fatal(err)
		}
		a := core.New(nw, delay.NewSlope(tb), core.Options{})
		for _, in := range nw.Inputs() {
			a.SetInputEvent(in, tech.Rise, 0, 0)
			a.SetInputEvent(in, tech.Fall, 0, 0)
		}
		if err := a.Run(); err != nil {
			b.Fatal(err)
		}
		if ev, _ := a.MaxArrival(); !ev.Valid {
			b.Fatal("no arrival")
		}
	}
}

// BenchmarkAnalogInverter measures one transient run of the reference
// simulator on an nMOS inverter (the unit of characterization cost).
func BenchmarkAnalogInverter(b *testing.B) {
	p := tech.NMOS4()
	for i := 0; i < b.N; i++ {
		c := analog.NewCircuit()
		vdd, in, out := c.Node("vdd"), c.Node("in"), c.Node("out")
		c.AddVSource(vdd, 0, analog.DC(p.Vdd))
		c.AddVSource(in, 0, analog.Step(0, p.Vdd, 5e-9))
		c.AddMOS(tech.NEnh, out, in, 0, p.MinW, p.MinL, p)
		c.AddMOS(tech.NDep, vdd, out, out, p.MinW, 4*p.MinL, p)
		c.AddCapacitor(out, 0, 100e-15, p.Vdd)
		if _, err := c.Tran(analog.TranOpts{Stop: 60e-9, Step: 30e-12}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benchmarks (the design choices DESIGN.md calls out) ----------

// BenchmarkAblationTables compares E2 accuracy under characterized versus
// analytic tables: the value of the characterization step itself.
func BenchmarkAblationTables(b *testing.B) {
	p := tech.NMOS4()
	for _, arm := range []struct {
		name string
		tb   func() *delay.Tables
	}{
		{"characterized", func() *delay.Tables { return tables(b) }},
		{"analytic", func() *delay.Tables { return delay.AnalyticTables(p) }},
	} {
		b.Run(arm.name, func(b *testing.B) {
			tb := arm.tb()
			var rows []experiments.AccuracyRow
			for i := 0; i < b.N; i++ {
				var err error
				rows, err = experiments.E2ModelAccuracy(p, tb)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(meanAbsErr(rows, "slope"), "%err-slope")
		})
	}
}

// BenchmarkAblationPruning compares the verifier with and without static
// sensitization pruning: cost (stage evaluations) and the arrival
// inflation of the fully pessimistic analysis.
func BenchmarkAblationPruning(b *testing.B) {
	p := tech.NMOS4()
	tb := delay.AnalyticTables(p)
	for _, arm := range []struct {
		name    string
		noPrune bool
	}{
		{"pruned", false},
		{"worst-case", true},
	} {
		b.Run(arm.name, func(b *testing.B) {
			var stages int
			var worst float64
			for i := 0; i < b.N; i++ {
				nw, err := gen.ALU(p, 4)
				if err != nil {
					b.Fatal(err)
				}
				a := core.New(nw, delay.NewSlope(tb), core.Options{NoStaticPruning: arm.noPrune})
				// Fix the function select so pruning has something to
				// prune; data inputs toggle.
				a.SetFixed(nw.Lookup("fadd"), switchsim.V1)
				for _, f := range []string{"fand", "for", "fxor"} {
					a.SetFixed(nw.Lookup(f), switchsim.V0)
				}
				for _, in := range nw.Inputs() {
					switch in.Name {
					case "fadd", "fand", "for", "fxor":
						continue
					}
					a.SetInputEvent(in, tech.Rise, 0, 0)
					a.SetInputEvent(in, tech.Fall, 0, 0)
				}
				if err := a.Run(); err != nil {
					b.Fatal(err)
				}
				stages = a.StagesEvaluated()
				ev, _ := a.MaxArrival()
				worst = ev.T
			}
			b.ReportMetric(float64(stages), "stages")
			b.ReportMetric(worst*1e9, "ns-worst")
		})
	}
}

// BenchmarkAblationIntegration compares the analog reference's two
// integrators on a characterization fixture at a coarse timestep.
func BenchmarkAblationIntegration(b *testing.B) {
	p := tech.NMOS4()
	for _, arm := range []struct {
		name string
		trap bool
	}{
		{"backward-euler", false},
		{"trapezoidal", true},
	} {
		b.Run(arm.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := analog.NewCircuit()
				vdd, in, out := c.Node("vdd"), c.Node("in"), c.Node("out")
				c.AddVSource(vdd, 0, analog.DC(p.Vdd))
				c.AddVSource(in, 0, analog.Step(0, p.Vdd, 5e-9))
				c.AddMOS(tech.NEnh, out, in, 0, p.MinW, p.MinL, p)
				c.AddMOS(tech.NDep, vdd, out, out, p.MinW, 4*p.MinL, p)
				c.AddCapacitor(out, 0, 100e-15, p.Vdd)
				if _, err := c.Tran(analog.TranOpts{Stop: 60e-9, Step: 120e-12, Trapezoidal: arm.trap}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkModelEvaluate compares the per-stage cost of the three models
// on a realistic multi-element stage.
func BenchmarkModelEvaluate(b *testing.B) {
	p := tech.NMOS4()
	nw, err := gen.PassChain(p, 6)
	if err != nil {
		b.Fatal(err)
	}
	res := stage.FromNode(nw, nw.Lookup("in"), tech.Fall, stage.Options{})
	st := res.Stages[len(res.Stages)-1]
	tb := delay.AnalyticTables(p)
	for _, m := range delay.All(tb) {
		b.Run(m.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.Evaluate(nw, st, 1e-9)
			}
		})
	}
}

// BenchmarkBatchSim is the vectorized functional-regression record
// (BENCH_6): a 1024-vector sweep over the composed E6 processor chip
// through the 64-lane bit-plane engine, against the same vectors run one
// at a time on the scalar engine. The batch arm reports vectors per
// second and settled-state throughput (the two bit-planes of node state
// the engine produces: nodes × vectors / 4 bytes); the scalar arm runs a
// 64-vector subsample of the same rows (a full serial 1k sweep would
// dominate bench time) and reports the same per-vector rate, so the
// speedup recorded in BENCH_6.json is a per-vector ratio of identical
// work. Address bits follow the chip's fixed directives; free inputs are
// a deterministic pseudo-random mix of 0/1 with released (X) symbols.
func BenchmarkBatchSim(b *testing.B) {
	const chipW = 8
	const vectors = 1024
	p := tech.NMOS4()
	nw, err := gen.Chip(p, chipW)
	if err != nil {
		b.Fatal(err)
	}
	fixed, _ := gen.ChipDirectives(chipW)
	bat := switchsim.NewBatch(nw)
	inputs := bat.Inputs()
	nn := len(nw.Nodes)

	rng := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 { // splitmix64: deterministic across runs
		rng += 0x9e3779b97f4a7c15
		z := rng
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	vecs := make([]switchsim.Value, 0, vectors*len(inputs))
	for v := 0; v < vectors; v++ {
		for _, in := range inputs {
			if fv, isFixed := fixed[in.Name]; isFixed {
				vecs = append(vecs, switchsim.FromBool(fv == "1"))
				continue
			}
			switch r := next() % 8; {
			case r < 3:
				vecs = append(vecs, switchsim.V0)
			case r < 6:
				vecs = append(vecs, switchsim.V1)
			default:
				vecs = append(vecs, switchsim.VX)
			}
		}
	}

	b.Run("batch", func(b *testing.B) {
		var sweeps int
		for i := 0; i < b.N; i++ {
			res, err := bat.Run(vecs, nil)
			if err != nil {
				b.Fatal(err)
			}
			sweeps = res.Sweeps
		}
		secs := b.Elapsed().Seconds() / float64(b.N)
		b.ReportMetric(float64(vectors)/secs, "vec/s")
		b.ReportMetric(float64(nn*vectors)/4/1e6/secs, "MB/s")
		b.ReportMetric(float64(sweeps), "sweeps")
		b.ReportMetric(float64(nw.Stats().Trans), "transistors")
	})
	b.Run("scalar", func(b *testing.B) {
		const sample = 64
		for i := 0; i < b.N; i++ {
			for v := 0; v < sample; v++ {
				s := switchsim.New(nw)
				row := vecs[v*len(inputs) : (v+1)*len(inputs)]
				for j, in := range inputs {
					if row[j] != switchsim.VX {
						if err := s.SetInput(in, row[j]); err != nil {
							b.Fatal(err)
						}
					}
				}
				s.Settle()
			}
		}
		secs := b.Elapsed().Seconds() / float64(b.N)
		b.ReportMetric(float64(sample)/secs, "vec/s")
	})
}
