// Package delay implements the paper's contribution: three switch-level
// delay models of increasing fidelity — Lumped RC, distributed RC (Elmore
// on the stage's RC tree), and the Slope model, in which the effective
// resistance of the switching transistor is a function of the ratio of the
// input transition time to the stage's intrinsic RC delay.
//
// All three models consume the same Stage structure and the same Tables of
// effective resistances, so their accuracy differences (experiments E2–E5)
// come purely from the modelling, not the inputs.
package delay

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/tech"
)

// Curve is an empirical slope-model curve: sampled multipliers as a
// function of the slope ratio r = Tin / τstep, where Tin is the input's
// 10–90% transition time and τstep the stage's step-input delay.
type Curve struct {
	// Ratio holds ascending sample points, the first of which must be 0
	// (step input).
	Ratio []float64
	// RMult[i] is the effective-resistance multiplier at Ratio[i];
	// RMult[0] is 1 by construction.
	RMult []float64
	// TFactor[i] is the output 10–90% transition time divided by τstep
	// at Ratio[i].
	TFactor []float64
}

// interp linearly interpolates ys over c.Ratio at r, clamping outside the
// sampled range by linear extrapolation of the last segment (slope effects
// grow roughly linearly in the deep-slow-input regime).
func (c *Curve) interp(ys []float64, r float64) float64 {
	n := len(c.Ratio)
	if n == 0 {
		return 1
	}
	if r <= c.Ratio[0] {
		return ys[0]
	}
	i := sort.SearchFloat64s(c.Ratio, r)
	if i >= n {
		// Extrapolate from the final segment.
		if n == 1 {
			return ys[0]
		}
		i = n - 1
	}
	x0, x1 := c.Ratio[i-1], c.Ratio[i]
	y0, y1 := ys[i-1], ys[i]
	if x1 == x0 {
		return y1
	}
	return y0 + (y1-y0)*(r-x0)/(x1-x0)
}

// At returns MultAt(r) and TFactorAt(r) together, locating the
// interpolation segment once instead of once per curve. The arithmetic
// matches interp term for term, so the results are bit-identical to the
// individual accessors — this is the slope model's innermost lookup.
func (c *Curve) At(r float64) (mult, tfactor float64) {
	n := len(c.Ratio)
	if n == 0 {
		return flooredMult(1), flooredTFactor(1)
	}
	if r <= c.Ratio[0] {
		return flooredMult(c.RMult[0]), flooredTFactor(c.TFactor[0])
	}
	i := sort.SearchFloat64s(c.Ratio, r)
	if i >= n {
		if n == 1 {
			return flooredMult(c.RMult[0]), flooredTFactor(c.TFactor[0])
		}
		i = n - 1
	}
	x0, x1 := c.Ratio[i-1], c.Ratio[i]
	if x1 == x0 {
		return flooredMult(c.RMult[i]), flooredTFactor(c.TFactor[i])
	}
	m0, m1 := c.RMult[i-1], c.RMult[i]
	f0, f1 := c.TFactor[i-1], c.TFactor[i]
	mult = flooredMult(m0 + (m1-m0)*(r-x0)/(x1-x0))
	tfactor = flooredTFactor(f0 + (f1-f0)*(r-x0)/(x1-x0))
	return mult, tfactor
}

func flooredMult(m float64) float64 {
	if m < 0.05 {
		m = 0.05
	}
	return m
}

func flooredTFactor(f float64) float64 {
	if f < 0.1 {
		f = 0.1
	}
	return f
}

// MultAt returns the effective-resistance multiplier at slope ratio r,
// floored at a small positive value so stage delays stay positive.
func (c *Curve) MultAt(r float64) float64 {
	return flooredMult(c.interp(c.RMult, r))
}

// TFactorAt returns the output-transition factor at slope ratio r, floored
// at a small positive value.
func (c *Curve) TFactorAt(r float64) float64 {
	return flooredTFactor(c.interp(c.TFactor, r))
}

// Validate checks monotone ratios and consistent lengths.
func (c *Curve) Validate() error {
	if len(c.Ratio) == 0 {
		return fmt.Errorf("delay: empty curve")
	}
	if len(c.RMult) != len(c.Ratio) || len(c.TFactor) != len(c.Ratio) {
		return fmt.Errorf("delay: curve length mismatch (%d ratios, %d rmult, %d tfactor)",
			len(c.Ratio), len(c.RMult), len(c.TFactor))
	}
	if c.Ratio[0] != 0 {
		return fmt.Errorf("delay: curve must start at ratio 0, got %g", c.Ratio[0])
	}
	for i := 1; i < len(c.Ratio); i++ {
		if c.Ratio[i] <= c.Ratio[i-1] {
			return fmt.Errorf("delay: curve ratios not ascending at %d", i)
		}
	}
	for i, m := range c.RMult {
		if math.IsNaN(m) || m <= 0 {
			return fmt.Errorf("delay: non-positive RMult[%d] = %g", i, m)
		}
	}
	return nil
}

// Tables packages the per-technology data the delay models need: the
// effective resistance of each device type for each output transition, and
// the slope-model curves. Tables come from two sources — the analytic
// defaults below, or measured characterization against the analog
// reference (package charlib), mirroring the paper's SPICE calibration.
type Tables struct {
	// Source records provenance for reports: "analytic" or "characterized".
	Source string
	// Tech names the parameter set the tables describe.
	Tech string
	// RSquare[d][tr] is the step-input effective resistance in
	// ohm-squares of device d driving transition tr, defined such that
	// a single-stage delay is exactly R·C (50% crossing).
	RSquare [4][2]float64
	// Curves[d][tr] is the slope curve for device d driving transition tr.
	Curves [4][2]Curve
}

// R returns the step-input effective resistance in ohms of a device of
// type d, geometry w×l, driving transition tr.
func (tb *Tables) R(d tech.Device, tr tech.Transition, w, l float64) float64 {
	return tb.RSquare[d][tr] * l / w
}

// Curve returns the slope curve for device d driving transition tr.
func (tb *Tables) Curve(d tech.Device, tr tech.Transition) *Curve {
	return &tb.Curves[d][tr]
}

// Validate checks every populated entry.
func (tb *Tables) Validate() error {
	for _, d := range tech.Devices() {
		for _, tr := range []tech.Transition{tech.Rise, tech.Fall} {
			if tb.RSquare[d][tr] < 0 {
				return fmt.Errorf("delay: negative RSquare[%s][%s]", d, tr)
			}
			if tb.RSquare[d][tr] == 0 {
				continue // device/transition not available in this tech
			}
			if err := tb.Curves[d][tr].Validate(); err != nil {
				return fmt.Errorf("curve [%s][%s]: %w", d, tr, err)
			}
		}
	}
	return nil
}

// AnalyticTables builds tables from the technology's rule-of-thumb
// resistances and a crude analytic slope shape: the effective resistance
// multiplier grows linearly with the slope ratio at about one third, and
// the output transition factor starts at the single-pole 10–90% value
// (ln 9 ≈ 2.2) and widens with slow inputs. These are the fallback when no
// characterization run is available, and the "uncalibrated" arm of
// ablation experiment E1.
func AnalyticTables(p *tech.Params) *Tables {
	tb := &Tables{Source: "analytic", Tech: p.Name}
	ratios := []float64{0, 0.5, 1, 2, 4, 8, 16, 32}
	for _, d := range tech.Devices() {
		for _, tr := range []tech.Transition{tech.Rise, tech.Fall} {
			rsq := p.RSquare(d, tr)
			tb.RSquare[d][tr] = rsq
			if rsq == 0 {
				continue
			}
			c := Curve{Ratio: ratios}
			for _, r := range ratios {
				c.RMult = append(c.RMult, 1+r/3)
				c.TFactor = append(c.TFactor, math.Log(9)+0.5*r)
			}
			tb.Curves[d][tr] = c
		}
	}
	return tb
}
