// Package tech defines MOS technology parameter sets used by every other
// layer of the timing verifier: the switch-level delay models, the analog
// reference simulator, and the characterization library all draw their
// device constants from a single Params value so that model-versus-reference
// comparisons are apples-to-apples.
//
// Two era-appropriate parameter sets are provided: NMOS4 (a 4 µm nMOS
// process with depletion-mode pullups, the technology Crystal was first
// applied to) and CMOS3 (a 3 µm complementary process). Values are stated
// in SI units throughout: meters, ohms, farads, volts, seconds.
package tech

import (
	"errors"
	"fmt"
)

// Device enumerates the transistor kinds understood by the switch-level
// network. The set matches the Berkeley .sim alphabet: 'e'/'n' for
// enhancement n-channel, 'd' for depletion n-channel (used as a load),
// and 'p' for enhancement p-channel.
type Device int

const (
	// NEnh is an enhancement-mode n-channel transistor. It conducts when
	// its gate is high and is the workhorse of both nMOS and CMOS logic.
	NEnh Device = iota
	// NDep is a depletion-mode n-channel transistor. Its threshold is
	// negative, so with gate tied to source it conducts always; nMOS
	// logic uses it as a resistive pullup load.
	NDep
	// PEnh is an enhancement-mode p-channel transistor. It conducts when
	// its gate is low.
	PEnh
	// RWire is not a transistor at all: an explicit interconnect
	// resistor (polysilicon or diffusion wire). It always conducts, does
	// not attenuate signal strength, and carries its resistance on the
	// element itself rather than in the technology tables.
	RWire
	numDevices = 4
)

// String returns the .sim-style mnemonic for the device type.
func (d Device) String() string {
	switch d {
	case NEnh:
		return "e"
	case NDep:
		return "d"
	case PEnh:
		return "p"
	case RWire:
		return "r"
	}
	return fmt.Sprintf("Device(%d)", int(d))
}

// Devices lists the transistor device types, in a fixed order convenient
// for table-driven code (characterization sweeps, report columns). RWire
// is excluded: wires carry their own resistance and have no tables.
func Devices() []Device { return []Device{NEnh, NDep, PEnh} }

// Transition identifies the direction of a signal transition. Delay models
// are direction-sensitive because the pullup and pulldown structures of a
// stage generally have different effective resistances.
type Transition int

const (
	// Rise is a low-to-high transition.
	Rise Transition = iota
	// Fall is a high-to-low transition.
	Fall
)

// String returns "rise" or "fall".
func (t Transition) String() string {
	if t == Rise {
		return "rise"
	}
	return "fall"
}

// Opposite returns the inverse transition.
func (t Transition) Opposite() Transition {
	if t == Rise {
		return Fall
	}
	return Rise
}

// Params is a complete description of one MOS process for the purposes of
// switch-level timing analysis and level-1 circuit simulation.
//
// The switch-level side uses the effective resistances (ohms per square:
// multiply by L/W of a device to get its resistance) and the capacitance
// coefficients. The analog side uses the threshold voltages and
// transconductance parameters. Keeping both in one structure guarantees the
// reference simulator and the delay models describe the same process.
type Params struct {
	// Name identifies the parameter set in reports ("nmos-4u", "cmos-3u").
	Name string

	// Vdd is the positive supply voltage in volts. GND is 0 by convention.
	Vdd float64

	// VtN, VtP, VtDep are the threshold voltages (volts) of the
	// enhancement n-channel, enhancement p-channel, and depletion
	// n-channel devices. VtP and VtDep are negative.
	VtN, VtP, VtDep float64

	// RUp[d] is the effective resistance, in ohm-squares, of device d
	// when it is pulling its output node up toward Vdd, under a step
	// input. Multiply by L/W. A zero entry means the device cannot pull
	// up in this technology (e.g. NEnh pullups lose a threshold and are
	// heavily penalized rather than forbidden).
	RUp [numDevices]float64

	// RDown[d] is the effective pull-down resistance in ohm-squares of
	// device d under a step input.
	RDown [numDevices]float64

	// CGate is gate capacitance per unit area (F/m²).
	CGate float64

	// CDiffArea is source/drain junction capacitance per unit area (F/m²).
	CDiffArea float64

	// CDiffWidth is source/drain capacitance per meter of device width
	// (F/m), a crude stand-in for perimeter capacitance: each
	// source/drain terminal of a device of width W contributes
	// CDiffWidth·W in addition to any explicit node capacitance.
	CDiffWidth float64

	// DiffDepth is the assumed depth (meters) of the source/drain
	// diffusion strip: terminal area ≈ W·DiffDepth. Zero selects three
	// lambda.
	DiffDepth float64

	// CWire is the default wiring capacitance per node (farads) assumed
	// when a netlist supplies no explicit capacitance for a node. Real
	// extracted netlists carry explicit values; generated circuits use
	// this default plus device contributions.
	CWire float64

	// Lambda is the scale factor: meters per lambda. Generators express
	// geometry in lambda; the parser converts .sim centimicrons directly.
	Lambda float64

	// MinW, MinL are the minimum device width and length in meters
	// (2 lambda in both processes).
	MinW, MinL float64

	// KPn, KPp are the level-1 transconductance parameters (A/V²) for
	// n-channel and p-channel devices, as in SPICE's KP = µ·Cox.
	KPn, KPp float64

	// ChannelLambda is the channel-length-modulation coefficient (1/V)
	// used by the analog model (SPICE's LAMBDA). Small but nonzero to
	// aid Newton convergence.
	ChannelLambda float64
}

// NMOS4 returns parameters for a generic 4 µm nMOS process with
// depletion-mode loads, in the style of the processes Crystal was
// originally calibrated for (Mead–Conway era). The effective resistances
// follow the classic rules of thumb: a minimum enhancement pulldown is
// about 10 kΩ, a 4:1 depletion load about 40 kΩ.
func NMOS4() *Params {
	lambda := 2e-6 // 4 µm drawn gate => lambda = 2 µm
	return &Params{
		Name:  "nmos-4u",
		Vdd:   5.0,
		VtN:   1.0,
		VtP:   -1.0, // unused in nMOS but kept valid
		VtDep: -3.0,
		RUp: [numDevices]float64{
			NEnh: 30000, // enhancement pullup loses a threshold: poor
			NDep: 40000, // depletion load pulling up
			PEnh: 0,     // no p-channel devices in this process
		},
		RDown: [numDevices]float64{
			NEnh: 10000,
			NDep: 25000, // depletion device used as a pass element
			PEnh: 0,
		},
		CGate:         7.0e-4,  // F/m² (≈0.7 fF/µm²)
		CDiffArea:     3.0e-4,  // F/m²
		CDiffWidth:    4.0e-10, // F/m of width
		CWire:         20e-15,  // 20 fF default node load
		Lambda:        lambda,
		MinW:          2 * lambda,
		MinL:          2 * lambda,
		KPn:           25e-6,
		KPp:           0,
		ChannelLambda: 0.02,
	}
}

// CMOS3 returns parameters for a generic 3 µm complementary process. The
// p-channel effective resistance is roughly 2.5× the n-channel one,
// reflecting the hole/electron mobility ratio.
func CMOS3() *Params {
	lambda := 1.5e-6
	return &Params{
		Name:  "cmos-3u",
		Vdd:   5.0,
		VtN:   0.9,
		VtP:   -0.9,
		VtDep: -3.0, // depletion devices are unusual in CMOS but permitted
		RUp: [numDevices]float64{
			NEnh: 30000,
			NDep: 40000,
			PEnh: 22000,
		},
		RDown: [numDevices]float64{
			NEnh: 9000,
			NDep: 25000,
			PEnh: 60000, // p-device pulling down loses a threshold
		},
		CGate:         9.0e-4,
		CDiffArea:     3.3e-4,
		CDiffWidth:    3.5e-10,
		CWire:         15e-15,
		Lambda:        lambda,
		MinW:          2 * lambda,
		MinL:          2 * lambda,
		KPn:           30e-6,
		KPp:           12e-6,
		ChannelLambda: 0.02,
	}
}

// Vt returns the threshold voltage for the given device type.
func (p *Params) Vt(d Device) float64 {
	switch d {
	case NEnh:
		return p.VtN
	case NDep:
		return p.VtDep
	case PEnh:
		return p.VtP
	}
	return 0
}

// KP returns the level-1 transconductance parameter for the device type.
// Depletion devices share the n-channel mobility.
func (p *Params) KP(d Device) float64 {
	if d == PEnh {
		return p.KPp
	}
	return p.KPn
}

// R returns the effective resistance in ohms of a device of type d with
// geometry w×l (meters) driving the given output transition. It returns
// +Inf-free large values only via the table; a zero table entry yields an
// error from Validate, so callers may assume R > 0 for permitted devices.
func (p *Params) R(d Device, tr Transition, w, l float64) float64 {
	sq := l / w
	if tr == Rise {
		return p.RUp[d] * sq
	}
	return p.RDown[d] * sq
}

// RSquare returns the per-square effective resistance for device d and
// output transition tr.
func (p *Params) RSquare(d Device, tr Transition) float64 {
	if tr == Rise {
		return p.RUp[d]
	}
	return p.RDown[d]
}

// GateCap returns the gate capacitance in farads of a device with geometry
// w×l meters.
func (p *Params) GateCap(w, l float64) float64 { return p.CGate * w * l }

// DiffCap returns the capacitance contributed by one source/drain terminal
// of a device of width w meters: a diffusion strip of area w·DiffDepth
// plus the width-proportional (perimeter-like) term.
func (p *Params) DiffCap(w float64) float64 {
	d := p.DiffDepth
	if d <= 0 {
		d = 3 * p.Lambda
	}
	return p.CDiffArea*w*d + p.CDiffWidth*w
}

// HasPChannel reports whether the process provides p-channel devices.
func (p *Params) HasPChannel() bool { return p.RUp[PEnh] > 0 || p.RDown[PEnh] > 0 }

// Validate checks internal consistency of the parameter set, returning a
// descriptive error for the first violation found. All constructors in
// this package produce parameter sets that validate cleanly; the check
// exists for user-supplied processes.
func (p *Params) Validate() error {
	switch {
	case p == nil:
		return errors.New("tech: nil Params")
	case p.Name == "":
		return errors.New("tech: missing Name")
	case p.Vdd <= 0:
		return fmt.Errorf("tech %s: Vdd must be positive, got %g", p.Name, p.Vdd)
	case p.VtN <= 0 || p.VtN >= p.Vdd:
		return fmt.Errorf("tech %s: VtN %g out of range (0, Vdd)", p.Name, p.VtN)
	case p.VtDep >= 0:
		return fmt.Errorf("tech %s: depletion threshold must be negative, got %g", p.Name, p.VtDep)
	case p.VtP >= 0:
		return fmt.Errorf("tech %s: VtP must be negative, got %g", p.Name, p.VtP)
	case p.CGate <= 0 || p.CDiffArea < 0 || p.CDiffWidth < 0:
		return fmt.Errorf("tech %s: capacitance coefficients must be non-negative (gate positive)", p.Name)
	case p.CWire < 0:
		return fmt.Errorf("tech %s: CWire must be non-negative", p.Name)
	case p.Lambda <= 0 || p.MinW <= 0 || p.MinL <= 0:
		return fmt.Errorf("tech %s: geometry scale factors must be positive", p.Name)
	case p.KPn <= 0:
		return fmt.Errorf("tech %s: KPn must be positive", p.Name)
	}
	if p.RDown[NEnh] <= 0 || p.RUp[NDep] <= 0 {
		return fmt.Errorf("tech %s: n-channel pulldown and depletion pullup resistances are mandatory", p.Name)
	}
	if p.HasPChannel() {
		if p.RUp[PEnh] <= 0 {
			return fmt.Errorf("tech %s: p-channel present but RUp[PEnh] is zero", p.Name)
		}
		if p.KPp <= 0 {
			return fmt.Errorf("tech %s: p-channel present but KPp is zero", p.Name)
		}
	}
	return nil
}
