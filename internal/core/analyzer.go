// Package core is the timing verifier: the Crystal-style worst-case
// analyzer that propagates latest rise/fall times (with slopes) through a
// switch-level network using a pluggable delay model, and traces the
// critical paths.
//
// The analysis is vectorless. Each node carries two worst-case events —
// the latest time it can finish rising and the latest time it can finish
// falling. Chip inputs are seeded by the user; events then propagate:
//
//   - a gate event that turns a transistor ON evaluates every stage whose
//     path runs through that transistor (package stage enumerates them);
//   - a gate event that turns a transistor OFF releases its channel nodes,
//     which may now move toward whatever still drives them (the classic
//     nMOS case: output rises through the depletion load after the
//     pulldown shuts off);
//   - an input's own transition propagates through already-conducting
//     pass transistors.
//
// Static sensitization from the switch-level simulator prunes stages
// through definitely-off transistors and transitions to values a node
// already holds. Everything else is worst case, as in the paper.
package core

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/delay"
	"repro/internal/netlist"
	"repro/internal/sched"
	"repro/internal/stage"
	"repro/internal/switchsim"
	"repro/internal/tech"
)

// Event is a worst-case arrival: node n finishes transition tr at time T
// (50% crossing) with 10–90% transition time Slope.
type Event struct {
	T     float64
	Slope float64
	Valid bool

	// Provenance for path tracing.
	FromNode int             // predecessor node index, -1 for seeded inputs
	FromTr   tech.Transition // predecessor transition
	Via      *stage.Stage    // stage that produced this event (nil if seeded)
}

// Options tunes the analysis.
type Options struct {
	// Stage bounds path enumeration (see stage.Options).
	Stage stage.Options
	// DB optionally shares a precomputed stage database built by an
	// earlier run over the same network with the same sensitization
	// (fixed values, seeded inputs, pruning mode, enumeration bounds).
	// Run verifies the database's stamp against this analysis and falls
	// back to a private database on any mismatch, so a stale DB can cost
	// time but never correctness. Obtain one from Analyzer.StageDB after
	// a Run. Safe to share across concurrent analyzers.
	DB *stage.DB
	// Workers sets the parallelism of one analysis (0 selects GOMAXPROCS).
	// With more than one worker the stage database is prewarmed
	// concurrently and the event loop itself runs the speculative
	// parallel drain (see drain.go): frontiers of upcoming events are
	// evaluated on a worker pool and committed serially in strict queue
	// order, so arrival times, slopes, provenance and feedback-guard
	// verdicts are bit-identical at every worker count. Workers = 1 is
	// the strict no-goroutine mode running the plain serial loop.
	Workers int
	// MaxEventsPerNode guards against combinational feedback: after this
	// many propagation rounds from one node's arrival the analyzer stops
	// propagating it and records the node in Unbounded (default 150 —
	// deep ripple structures legitimately re-propagate tens of times
	// during longest-path relaxation).
	MaxEventsPerNode int
	// DefaultSlope is the transition time assumed for seeded inputs that
	// do not specify one (default 1 ns).
	DefaultSlope float64
	// NoStaticPruning disables the switch-level sensitization pruning,
	// yielding the fully pessimistic analysis (ablation knob).
	NoStaticPruning bool
	// LoopBreak lists nodes whose events are recorded but not propagated
	// further — the user directive Crystal required to cut combinational
	// feedback (latch internals) out of the worst-case iteration.
	LoopBreak []*netlist.Node
	// NoReorder disables the cache-conscious RCM row layout of the
	// compiled network (netlist.CompileWith) and keeps construction order.
	// Results are bit-identical either way — the layout only changes which
	// cache lines the drain touches — so this is purely the -reorder=off
	// escape hatch and A/B lever.
	NoReorder bool
	// ReanalyzeMaxDirty is the dirty-node fraction above which Reanalyze
	// abandons incremental propagation and redoes the analysis from
	// scratch — past it, resetting and re-propagating most of the chip
	// costs more than a clean full run (default 0.5).
	ReanalyzeMaxDirty float64
	// Hier enables hierarchical macromodel analysis (see hier.go): repeated
	// instances annotated in the netlist are detected, one representative
	// per class is analyzed flat, and its interior timing is stamped onto
	// every member whose boundary context matches exactly. Results are
	// bit-identical to a flat run; instances whose context differs fall
	// back to flat analysis individually.
	Hier bool
}

func (o Options) fill() Options {
	if o.MaxEventsPerNode <= 0 {
		o.MaxEventsPerNode = 150
	}
	if o.DefaultSlope <= 0 {
		o.DefaultSlope = 1e-9
	}
	if o.ReanalyzeMaxDirty <= 0 {
		o.ReanalyzeMaxDirty = 0.5
	}
	return o
}

// Analyzer performs worst-case timing analysis of one network with one
// delay model. Build with New, seed inputs, then Run.
type Analyzer struct {
	Net   *netlist.Network
	Model delay.Model
	Opts  Options

	sim    *switchsim.Sim
	static []switchsim.Value // settled values under fixed inputs

	// Per-node drain state, indexed by COMPILED ROW (a.cnet.Perm[node]),
	// not node index: with the RCM layout on, electrically adjacent nodes
	// share cache lines here too, which is where the drain spends its
	// improve/commit loads. Everything semantic — queue items, provenance,
	// reported indexes — stays in node-index space; only array addressing
	// goes through the permutation (see row).
	events [][2]Event    // per row: [Rise, Fall]
	count  [][2]int      // improvement counters
	hist   [][2]nodeHist // superseded-but-propagated events (incremental replay)

	// histBlocks backs every nodeHist chain: fixed-size blocks of chunks
	// addressed by a flat int32 index, with histFree heading a free chain
	// of chunks returned by dirty-node resets. Blocks are pointer-free
	// and, once allocated, never move — the previous single-slice arena
	// re-allocated and copied itself on every capacity step, and that
	// growslice traffic (fresh pages, memmove, GC churn) billed ~25% of a
	// chip-scale drain. Index 0 is a sentinel ("no chunk"), so the zero
	// nodeHist is naturally empty.
	histBlocks [][]histChunk
	histLen    int32
	histFree   int32

	// Unbounded lists nodes whose arrival kept improving past the guard
	// (combinational feedback); their times are lower bounds only.
	Unbounded []*netlist.Node
	// Truncated reports that stage enumeration hit a cap somewhere.
	Truncated bool

	seeded       []seedEvent
	fixed        map[int]switchsim.Value
	initial      []switchsim.Value // pre-settle stored values (clocked analyses)
	loopBreak    []bool
	cachedOracle stage.Oracle
	queue        sched.Queue
	queued       [][2]bool // per (node, transition): live entry in the queue
	stageEv      int       // stages evaluated (cost metric)

	// Parallel-drain scratch (see drain.go): frontier slots, the frontier
	// buffer, the per-region fence (each region's span tracks half the
	// smallest stage delay committed into it, in minDelayR), and the
	// cumulative drain counters.
	spec      []specItem
	fbuf      []sched.Item
	fence     sched.RegionFence
	minDelayR []float64
	spans     []float64
	stats     DrainStats

	// db memoizes stage enumeration: sensitization is static during Run,
	// so a trigger's stages never change. Either a private database or
	// one shared via Options.DB (stamp-checked in Run).
	db *stage.DB

	// cnet is the compiled structure-of-arrays view of a.Net (CSR gate
	// adjacency, per-node flags) — the only network representation the
	// event loop reads. Rebuilt per generation by buildGates.
	cnet *netlist.Compact

	// Hierarchical analysis state (nil when Options.Hier is off or nothing
	// was detected). The masks alias hier's current masks and are checked
	// in the hot loops; both are nil whenever nothing is stamped, so the
	// flat path costs one nil check. Indexed by node / transistor index
	// (not compiled row) — instance geometry lives in index space.
	hier          *hierState
	hierSkipNode  []bool
	hierSkipTrans []bool
}

// histEvent is one superseded event that was propagated before being
// replaced. A node's worst-case (T, Slope) pair is not a complete summary
// of its influence: an earlier event with a slower slope can produce a
// LATER arrival downstream (slope degradation through the delay model), so
// its candidates survive in downstream maxima even after the event itself
// is replaced. Incremental re-analysis must replay these to reproduce a
// from-scratch run bit for bit.
type histEvent struct {
	t, slope float64
}

// histChunkLen is the events-per-chunk of the history arena: sized so the
// common short streams (a handful of superseded events) fit in one chunk
// while hub nodes near the guard budget chain a few dozen.
const histChunkLen = 8

// histChunk is one arena block of a (node, transition)'s recorded stream.
// next links to the following chunk (arena index; 0 terminates). Freed
// chains are threaded through next onto the analyzer's free list.
type histChunk struct {
	ev   [histChunkLen]histEvent
	n    int32
	next int32
}

// nodeHist tracks one (node, transition)'s replay state: the complete
// chain of superseded-but-propagated events in propagation order (T
// non-decreasing), stored in the analyzer's history arena (head/tail are
// chunk indexes, 0 = empty), and whether the CURRENT event has propagated
// yet.
//
// The chain is deliberately NOT pruned to the slope frontier. Dominated
// entries (an earlier, shallower event followed by a later, steeper one)
// cannot change any final arrival — their replayed candidates lose to the
// dominating event's under the deterministic tie-break — but they do
// carry propagation *rounds*: a downstream node's feedback-guard count is
// the number of improvements it saw, not the number of frontier events.
// Pruning here made incremental re-analysis under-count rounds on nodes
// fed by long streams (e.g. downstream of a guard-cut spin) and miss
// guard hits a from-scratch run reports. The chain length is bounded by
// Options.MaxEventsPerNode per (node, transition): the guard stops
// propagation — and therefore recording — past that count.
type nodeHist struct {
	head, tail int32
	propagated bool
}

// histBlockBits sizes arena blocks at 1<<histBlockBits chunks (~550 KiB
// each): big enough that a chip-scale run allocates a handful of blocks,
// small enough that gate-sized runs don't overcommit.
const histBlockBits = 12

// histChunkAt resolves a flat arena index to its chunk.
func (a *Analyzer) histChunkAt(idx int32) *histChunk {
	return &a.histBlocks[idx>>histBlockBits][idx&(1<<histBlockBits-1)]
}

// appendHist records one superseded-but-propagated event on h's chain.
func (a *Analyzer) appendHist(h *nodeHist, t, slope float64) {
	if h.tail != 0 {
		if c := a.histChunkAt(h.tail); c.n < histChunkLen {
			c.ev[c.n] = histEvent{t, slope}
			c.n++
			return
		}
	}
	idx := a.newHistChunk()
	c := a.histChunkAt(idx)
	c.ev[0] = histEvent{t, slope}
	c.n = 1
	if h.tail == 0 {
		h.head = idx
	} else {
		a.histChunkAt(h.tail).next = idx
	}
	h.tail = idx
}

// newHistChunk returns a zeroed chunk: off the free list when a dirty
// reset returned one, the next never-used slot otherwise (appending a
// fresh block when the current one is full; index 0 stays the sentinel).
func (a *Analyzer) newHistChunk() int32 {
	if idx := a.histFree; idx != 0 {
		c := a.histChunkAt(idx)
		a.histFree = c.next
		*c = histChunk{}
		return idx
	}
	if a.histLen == 0 {
		a.histLen = 1 // reserve the index-0 sentinel
	}
	if int(a.histLen)>>histBlockBits == len(a.histBlocks) {
		a.histBlocks = append(a.histBlocks, make([]histChunk, 1<<histBlockBits))
	}
	idx := a.histLen
	a.histLen++
	// Blocks survive resetHistArena without being rezeroed, so a slot may
	// hold a previous drain's chunk.
	*a.histChunkAt(idx) = histChunk{}
	return idx
}

// freeHist clears h and threads its chunk chain onto the free list for
// reuse (a dirty hub node re-records a stream of comparable length every
// epoch).
func (a *Analyzer) freeHist(h *nodeHist) {
	if h.head != 0 {
		a.histChunkAt(h.tail).next = a.histFree
		a.histFree = h.head
	}
	*h = nodeHist{}
}

// resetHistArena empties the arena for a fresh from-scratch drain,
// keeping the allocated blocks; every nodeHist referencing it must be
// zeroed by the caller.
func (a *Analyzer) resetHistArena() {
	a.histLen = 0
	a.histFree = 0
}

type seedEvent struct {
	node  *netlist.Node
	tr    tech.Transition
	t     float64
	slope float64
}

type qkey struct {
	node int
	tr   tech.Transition
}

// The pending-propagation queue is sched.Queue: a value-slice priority
// queue under the strict total order sched.Less (arrival time, then node,
// then transition). A mere partial order on time would let the pop order
// of tied events depend on the queue's internal arrangement — i.e. on
// every unrelated event ever pushed — which makes feedback-guard cutoffs
// irreproducible between a full run and an incremental one. Node indexes
// are stable across incremental edits, so this order is canonical for a
// given event set. Entries are stamped with the arrival time they were
// queued at; stale ones (superseded by a re-push) are skipped at pop.

// New creates an analyzer for the network using the given delay model.
func New(nw *netlist.Network, m delay.Model, opts Options) *Analyzer {
	return &Analyzer{
		Net:   nw,
		Model: m,
		Opts:  opts.fill(),
		fixed: make(map[int]switchsim.Value),
	}
}

// SetFixed pins a node to a constant logic value for sensitization (e.g. a
// mode or enable input that does not toggle in the analyzed scenario).
func (a *Analyzer) SetFixed(n *netlist.Node, v switchsim.Value) {
	a.fixed[n.Index] = v
}

// SetInputEvent seeds a worst-case transition on a chip input: node n
// finishes transition tr at time t with the given 10–90% slope (0 selects
// Options.DefaultSlope).
func (a *Analyzer) SetInputEvent(n *netlist.Node, tr tech.Transition, t, slope float64) error {
	if n.Kind != netlist.KindInput {
		return fmt.Errorf("core: %s is not marked as an input", n.Name)
	}
	if slope <= 0 {
		slope = a.Opts.DefaultSlope
	}
	a.seeded = append(a.seeded, seedEvent{n, tr, t, slope})
	return nil
}

// SetInputEventName is SetInputEvent by node name.
func (a *Analyzer) SetInputEventName(name string, tr tech.Transition, t, slope float64) error {
	n := a.Net.Lookup(name)
	if n == nil {
		return fmt.Errorf("core: no node named %q", name)
	}
	return a.SetInputEvent(n, tr, t, slope)
}

// Arrival returns the worst-case event for node n and transition tr.
func (a *Analyzer) Arrival(n *netlist.Node, tr tech.Transition) Event {
	if a.events == nil {
		return Event{}
	}
	return a.eventAt(n.Index, tr)
}

// StagesEvaluated reports how many stage/model evaluations Run performed —
// the throughput metric of experiment E6.
func (a *Analyzer) StagesEvaluated() int { return a.stageEv }

// oracle returns the sensitization oracle, building it from settled
// static values on first use (one closure per Run, not per event).
func (a *Analyzer) oracle() stage.Oracle {
	if a.Opts.NoStaticPruning || a.static == nil {
		return nil // worst case
	}
	if a.cachedOracle != nil {
		return a.cachedOracle
	}
	// Conduction is a pure function of the settled static values, which are
	// frozen for the lifetime of this oracle — precompute it per transistor
	// so enumeration (which asks per edge of every path and side walk)
	// indexes an array instead of re-deriving device behaviour.
	conduct := make([]stage.Conduction, len(a.Net.Trans))
	for i, t := range a.Net.Trans {
		switch {
		case t.AlwaysOn():
			conduct[i] = stage.On
		default:
			g := a.static[t.Gate.Index]
			if g == switchsim.VX {
				conduct[i] = stage.Maybe
			} else if g == switchsim.FromBool(t.ConductsOn() == 1) {
				conduct[i] = stage.On
			} else {
				conduct[i] = stage.Off
			}
		}
	}
	a.cachedOracle = func(t *netlist.Trans) stage.Conduction {
		return conduct[t.Index]
	}
	return a.cachedOracle
}

// Run executes the analysis. It may be called once per analyzer.
func (a *Analyzer) Run() error {
	if a.events != nil {
		return fmt.Errorf("core: Run already called")
	}
	if len(a.seeded) == 0 {
		return fmt.Errorf("core: no input events seeded")
	}
	nw := a.Net
	a.events = make([][2]Event, len(nw.Nodes))
	a.count = make([][2]int, len(nw.Nodes))
	a.hist = make([][2]nodeHist, len(nw.Nodes))
	a.resetHistArena()
	a.queued = make([][2]bool, len(nw.Nodes))
	a.queue.Reset()
	a.queue.Grow(4 * len(nw.Nodes))
	a.buildGates()

	if err := a.settleStatic(); err != nil {
		return err
	}
	if a.Opts.Hier {
		a.setupHier()
	}

	// Stage database: accept the shared one only if it was built over
	// this network under the same sensitization and enumeration bounds;
	// otherwise build a private one.
	stamp := a.stageStamp()
	if a.Opts.DB != nil && a.Opts.DB.Network() == nw && a.Opts.DB.Stamp == stamp {
		a.db = a.Opts.DB
	} else {
		opt := a.Opts.Stage
		opt.Oracle = a.oracle()
		a.db = stage.NewDB(nw, opt)
		a.db.Stamp = stamp
	}
	if w := Workers(a.Opts.Workers, 0); w > 1 {
		// With stamped members the prewarm skips their devices and inputs
		// entirely — the stage enumerations that were never going to be
		// evaluated are never built, which is the memory win of
		// hierarchical analysis.
		a.db.PrewarmMasked(w, a.hierSkipTrans, a.hierSkipNode)
	}

	if a.hier != nil {
		a.drainAndStamp()
	} else {
		a.seedAll()
		a.drainRouted(nil)
	}
	return nil
}

// buildGates recompiles the structure-of-arrays network view and the
// loop-break mask for the current a.Net generation.
func (a *Analyzer) buildGates() {
	nw := a.Net
	a.cnet = netlist.CompileWith(nw, netlist.CompileOptions{Reorder: !a.Opts.NoReorder})
	a.loopBreak = make([]bool, len(nw.Nodes))
	for _, n := range a.Opts.LoopBreak {
		a.loopBreak[a.cnet.Perm[n.Index]] = true
	}
}

// row translates a node index to its compiled row — the index of every
// per-node drain array (events/count/hist/queued/loopBreak and the
// Compact's CSR/flag vectors). Queue items, provenance and anything
// reported stay in node-index space.
func (a *Analyzer) row(node int) int { return int(a.cnet.Perm[node]) }

// settleStatic computes the static sensitization snapshot for the current
// a.Net generation: settle the network with fixed values; nodes that
// receive events are left at X (they change during analysis). It replaces
// a.sim, a.static and invalidates the cached oracle.
func (a *Analyzer) settleStatic() error {
	nw := a.Net
	a.cachedOracle = nil
	a.sim = switchsim.New(nw)
	for idx, v := range a.fixed {
		if err := a.sim.SetInput(nw.Nodes[idx], v); err != nil {
			return err
		}
	}
	// Carried state (clocked analyses): seed stored values before the
	// settle so latched nodes keep their phase-boundary levels.
	if a.initial != nil {
		for idx, v := range a.initial {
			n := nw.Nodes[idx]
			if n.IsRail() {
				continue
			}
			if _, isFixed := a.fixed[idx]; isFixed {
				continue
			}
			if err := a.sim.SetValue(n, v); err != nil {
				return err
			}
		}
	}
	a.sim.Settle()
	a.static = a.sim.Snapshot()
	// Nodes downstream of event inputs cannot be trusted as static: the
	// seeded inputs toggle. Re-settle with those inputs at X.
	for _, s := range a.seeded {
		if _, isFixed := a.fixed[s.node.Index]; isFixed {
			return fmt.Errorf("core: node %s both fixed and seeded", s.node.Name)
		}
		if err := a.sim.SetInput(s.node, switchsim.VX); err != nil {
			return err
		}
	}
	a.sim.Settle()
	a.static = a.sim.Snapshot()
	return nil
}

// seedAll applies every seeded input event.
func (a *Analyzer) seedAll() {
	for _, s := range a.seeded {
		a.improve(s.node.Index, s.tr, Event{
			T: s.t, Slope: s.slope, Valid: true, FromNode: -1,
		})
	}
}

// replayItem is one historical boundary event re-injected during
// incremental re-analysis, merged with the heap in trigger-time order so
// candidate generation follows the same global order as a full run.
type replayItem struct {
	node  int
	tr    tech.Transition
	t     float64
	slope float64
}

// drain runs the event loop until the queue empties.
func (a *Analyzer) drain() { a.drainReplay(nil) }

// drainReplay runs the event loop, interleaving the given replay items
// (sorted by time) with the heap in time order. Replays re-propagate the
// recorded events of clean boundary nodes; they bypass the improvement
// counters because the counts already include those rounds from the run
// that recorded them.
func (a *Analyzer) drainReplay(replays []replayItem) {
	ri := 0
	for a.queue.Len() > 0 || ri < len(replays) {
		if ri < len(replays) && (a.queue.Len() == 0 ||
			!sched.Less(a.queue.Peek(), sched.Item{T: replays[ri].t, Node: int32(replays[ri].node), Tr: uint8(replays[ri].tr)})) {
			r := replays[ri]
			ri++
			a.propagateEvent(r.node, r.tr, Event{T: r.t, Slope: r.slope, Valid: true})
			continue
		}
		// Pop the earliest pending event: processing in time order makes
		// most improvements final on first visit — longest-path over a
		// DAG degenerates to one visit per node; reconvergence and
		// cycles re-queue. The queue holds stale entries (an improvement
		// re-pushes with the new time); only an entry matching the
		// node's current arrival is live.
		it := a.queue.Pop()
		node, tr := int(it.Node), tech.Transition(it.Tr)
		row := a.row(node)
		if !a.queued[row][tr] || it.T != a.events[row][tr].T {
			continue // stale: a fresher entry is in the queue
		}
		a.queued[row][tr] = false
		// Feedback guard: counts propagation rounds, not improvements,
		// so deep longest-path relaxation is unaffected while true
		// cycles (which re-queue forever) are cut off.
		a.count[row][tr]++
		if a.count[row][tr] > a.Opts.MaxEventsPerNode {
			if a.count[row][tr] == a.Opts.MaxEventsPerNode+1 {
				a.Unbounded = append(a.Unbounded, a.Net.Nodes[node])
			}
			continue
		}
		a.hist[row][tr].propagated = true
		a.propagate(node, tr)
	}
}

// tieBetter orders candidates that arrive at exactly the same time, so the
// surviving event is a function of the candidate set alone, not of the
// order the analysis happened to generate them in. Incremental re-analysis
// replays only part of the propagation order; without a total order on
// ties its results could differ from a from-scratch run by provenance or
// slope while both are "correct". Prefer the more pessimistic slope, then
// the smallest predecessor.
func tieBetter(cand, cur Event) bool {
	if cand.Slope != cur.Slope {
		return cand.Slope > cur.Slope
	}
	if cand.FromNode != cur.FromNode {
		return cand.FromNode < cur.FromNode
	}
	return cand.FromTr < cur.FromTr
}

// improve records a candidate event if it is later than the current one
// (with a deterministic tie-break at equal times), and queues the node for
// propagation. Returns whether it improved.
func (a *Analyzer) improve(node int, tr tech.Transition, ev Event) bool {
	row := a.row(node)
	cur := &a.events[row][tr]
	if cur.Valid {
		if ev.T < cur.T {
			return false
		}
		if ev.T == cur.T && !tieBetter(ev, *cur) {
			return false
		}
	}
	if a.cnet.IsRail[row] {
		return false
	}
	// Static pruning: a node pinned at a definite value cannot complete
	// a transition to the opposite value... unless that value came from
	// a precharge assumption (it is exactly what evaluation discharges).
	if !a.Opts.NoStaticPruning {
		sv := a.static[node]
		want := switchsim.V1
		if tr == tech.Fall {
			want = switchsim.V0
		}
		if sv != switchsim.VX && sv != want && !a.cnet.Precharged[row] {
			return false
		}
	}
	// History: a superseded event that already propagated may still matter
	// downstream — a steeper slope can yield a later consequence than the
	// final (later, shallower) event does, and on a feedback-guarded node
	// the superseding event may never propagate at all (the guard cuts the
	// spin off), leaving the superseded one as the last influence the rest
	// of the chip actually saw. Record every propagated-superseded event,
	// unpruned (see nodeHist), so an incremental re-analysis replays
	// exactly the stream a full run propagated — including its length,
	// which downstream feedback-guard counts depend on.
	if cur.Valid {
		h := &a.hist[row][tr]
		if h.propagated {
			a.appendHist(h, cur.T, cur.Slope)
		}
		h.propagated = false
	}
	// An equal-time improvement (slope/provenance tie-break) can reuse a
	// live queue entry: the entry carries only (t, node, tr) and the event
	// payload is read from a.events at pop time, so a duplicate push would
	// just be skipped as stale. Everything else pushes: the queue tolerates
	// stale entries, and a new arrival time needs its own priority.
	samePriority := cur.Valid && ev.T == cur.T && a.queued[row][tr]
	*cur = ev
	if !samePriority {
		a.queued[row][tr] = true
		a.queue.Push(sched.Item{T: ev.T, Node: int32(node), Tr: uint8(tr)})
	}
	return true
}

// propagate fans the node's current event out to its consequences.
func (a *Analyzer) propagate(node int, tr tech.Transition) {
	a.propagateEvent(node, tr, a.events[a.row(node)][tr])
}

// propagateEvent fans an explicit event out to its consequences. The event
// is usually the node's current arrival (propagate), but incremental replay
// passes historical ones: superseded events whose steeper slopes a full run
// propagated before they were overwritten.
func (a *Analyzer) propagateEvent(node int, tr tech.Transition, ev Event) {
	row := a.row(node)
	if a.loopBreak[row] {
		return // user directive: record the arrival, cut the fanout
	}
	if !ev.Valid {
		return
	}
	if a.hierSkipNode != nil && node < len(a.hierSkipNode) && a.hierSkipNode[node] {
		return // stamped member interior: timing arrives by stamping
	}

	// 1. Gate consequences, via the database's compiled consequence lists:
	// a turn-on evaluates every stage through the device (both target
	// transitions); a turn-off releases every node channel-connected to the
	// device — which may now drift toward its remaining drivers (the NAND
	// output released by a mid-stack input sits several hops from the
	// device itself) — with paths through the off device already filtered
	// out. The lists preserve the nested enumeration order (through: Rise
	// then Fall; release: group order, Rise before Fall per member), so the
	// candidate sequence improve sees is unchanged.
	cn := a.cnet
	for _, ref := range cn.GateRef[cn.GateStart[row]:cn.GateStart[row+1]] {
		ti, on1 := netlist.UnpackGateRef(ref)
		if a.hierSkipTrans != nil && int(ti) < len(a.hierSkipTrans) && a.hierSkipTrans[ti] {
			continue // stamped member device
		}
		turnsOn := (tr == tech.Rise) == on1
		var stages []*stage.Stage
		var trunc bool
		if turnsOn {
			stages, trunc = a.db.TurnOnIdx(ti)
		} else {
			stages, trunc = a.db.TurnOffIdx(ti)
		}
		a.Truncated = a.Truncated || trunc
		for _, st := range stages {
			a.applyStage(st, node, tr, ev)
		}
	}

	// 2. Channel consequences: an externally seeded input's own level
	// change rides through already-conducting pass devices. Internal
	// nodes do NOT re-propagate through the channel graph here — the
	// stages that produced their events already targeted every node of
	// the driven group, and re-propagating would bounce arrivals back
	// and forth across channel-connected pairs forever.
	if cn.IsInput[row] && cn.HasTerms[row] {
		stages, trunc := a.db.From(a.Net.Nodes[node], tr)
		a.Truncated = a.Truncated || trunc
		for _, st := range stages {
			a.applyStage(st, node, tr, ev)
		}
	}
}

// StageDB returns the stage database this analysis used (available after
// Run). Hand it to Options.DB of a later analyzer over the same network
// and sensitization — e.g. the same circuit under a different delay model
// — to skip re-enumerating every stage. The database is safe to share
// across concurrent analyzers.
func (a *Analyzer) StageDB() *stage.DB { return a.db }

// stageStamp encodes everything stage enumeration depends on: the static
// sensitization values and the enumeration bounds. Two analyses with equal
// stamps over the same network enumerate identical stages, so they may
// share one stage database.
func (a *Analyzer) stageStamp() string {
	opt := a.Opts.Stage.Fill()
	var b strings.Builder
	fmt.Fprintf(&b, "d%d|p%d|", opt.MaxDepth, opt.MaxPaths)
	if a.Opts.NoStaticPruning || a.static == nil {
		b.WriteString("worst")
	} else {
		for _, v := range a.static {
			b.WriteByte('0' + byte(v))
		}
	}
	return b.String()
}

// applyStage evaluates one stage against the triggering event and records
// the resulting arrival at the stage target.
func (a *Analyzer) applyStage(st *stage.Stage, fromNode int, fromTr tech.Transition, ev Event) {
	// Source validity: an input-fed stage needs the source to plausibly
	// hold the driving value; rails were filtered by the enumerator.
	if a.hierSkipNode != nil {
		if t := st.Target.Index; t < len(a.hierSkipNode) && a.hierSkipNode[t] {
			return // stamped member interior: boundary fan-in is replayed by the representative
		}
	}
	if si := st.SourceInputIndex(); si >= 0 && !a.Opts.NoStaticPruning {
		sv := a.static[si]
		want := switchsim.V1
		if st.Transition == tech.Fall {
			want = switchsim.V0
		}
		if sv != switchsim.VX && sv != want {
			return
		}
	}
	a.stageEv++
	r := a.Model.Evaluate(a.Net, st, ev.Slope)
	if math.IsNaN(r.Delay) || r.Delay < 0 {
		return
	}
	a.improve(st.Target.Index, st.Transition, Event{
		T:        ev.T + r.Delay,
		Slope:    r.Slope,
		Valid:    true,
		FromNode: fromNode,
		FromTr:   fromTr,
		Via:      st,
	})
}

// Hop is one step of a traced critical path.
type Hop struct {
	Node  *netlist.Node
	Tr    tech.Transition
	Event Event
}

// Path is a traced critical path, listed from the seeding input to the
// endpoint.
type Path struct {
	Hops []Hop
}

// End returns the endpoint hop.
func (p *Path) End() Hop { return p.Hops[len(p.Hops)-1] }

// Trace reconstructs the worst-case path ending at (n, tr), or nil if the
// node has no arrival.
func (a *Analyzer) Trace(n *netlist.Node, tr tech.Transition) *Path {
	ev := a.Arrival(n, tr)
	if !ev.Valid {
		return nil
	}
	var rev []Hop
	node, t := n.Index, tr
	seen := make(map[qkey]bool)
	for {
		k := qkey{node, t}
		if seen[k] {
			// Provenance cycle (possible when the feedback guard fired
			// mid-analysis): truncate the trace here.
			break
		}
		seen[k] = true
		e := a.eventAt(node, t)
		rev = append(rev, Hop{a.Net.Nodes[node], t, e})
		if e.FromNode < 0 {
			break
		}
		node, t = e.FromNode, e.FromTr
	}
	p := &Path{Hops: make([]Hop, len(rev))}
	for i, h := range rev {
		p.Hops[len(rev)-1-i] = h
	}
	return p
}

// CriticalPathsThrough returns the critical paths (as CriticalPaths) that
// pass through the given node — Crystal's "why is this net late" query.
func (a *Analyzer) CriticalPathsThrough(n *netlist.Node, k int) []*Path {
	all := a.CriticalPaths(0)
	var out []*Path
	for _, p := range all {
		for _, h := range p.Hops {
			if h.Node == n {
				out = append(out, p)
				break
			}
		}
		if k > 0 && len(out) >= k {
			break
		}
	}
	return out
}

// CriticalPaths returns the k latest-arriving endpoint events, traced.
// Endpoints are the watched outputs if any are marked, otherwise every
// non-rail node.
func (a *Analyzer) CriticalPaths(k int) []*Path {
	var ends []*netlist.Node
	if outs := a.Net.Outputs(); len(outs) > 0 {
		ends = outs
	} else {
		for _, n := range a.Net.Nodes {
			if !n.IsRail() && n.Kind != netlist.KindInput {
				ends = append(ends, n)
			}
		}
	}
	type cand struct {
		n  *netlist.Node
		tr tech.Transition
		t  float64
	}
	var cs []cand
	for _, n := range ends {
		for _, tr := range []tech.Transition{tech.Rise, tech.Fall} {
			if ev := a.Arrival(n, tr); ev.Valid {
				cs = append(cs, cand{n, tr, ev.T})
			}
		}
	}
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].t != cs[j].t {
			return cs[i].t > cs[j].t
		}
		if cs[i].n.Name != cs[j].n.Name {
			return cs[i].n.Name < cs[j].n.Name
		}
		return cs[i].tr < cs[j].tr
	})
	if k > 0 && len(cs) > k {
		cs = cs[:k]
	}
	var out []*Path
	for _, c := range cs {
		if p := a.Trace(c.n, c.tr); p != nil {
			out = append(out, p)
		}
	}
	return out
}
