// Invalidation planning: widen an edit batch's seed set to whole
// channel-connected groups, fold in sensitization changes, close over
// gate fanout, and emit the dirty maps stage.DB.Derive and the analyzer's
// incremental re-propagation consume.
package incremental

import (
	"repro/internal/netlist"
	"repro/internal/switchsim"
)

// Plan is the computed invalidation for one applied batch.
//
// The unit of dirtiness is the component: the channel-connected groups of
// non-source nodes, plus one singleton component per non-rail source.
// Inputs need components of their own because they are not inert the way
// rails are — a pass path can drive an input node (the analyzer improves
// any non-rail node), and an input's own arrival fans out through both its
// gate connections and its channel terminals. Rails stay outside (comp -1):
// their "arrival" can never change.
type Plan struct {
	res *Result

	// comp[i] is the component of node i, -1 for rails.
	comp  []int
	nComp int

	dbDirty   []bool // per component: stage enumerations stale
	timeDirty []bool // per component: arrival times stale (downstream closure)

	// DirtyTrans / DBDirtyNode are the per-index maps stage.DB.Derive
	// takes (new-generation indexes).
	DirtyTrans  []bool
	DBDirtyNode []bool

	// dirtyNode marks nodes whose arrivals the analyzer must reset: the
	// members of time-dirty components plus nodes new in this generation.
	dirtyNode []bool

	// DirtyNodes counts dirtyNode entries; Frac is DirtyNodes over the
	// non-rail node count (the fallback-threshold metric).
	DirtyNodes int
	Frac       float64

	// ForceFull reports that the batch cannot be applied incrementally
	// (a Retype changed which nodes are strong sources).
	ForceFull bool
}

// Plan computes the invalidation plan for the applied batch. oldStatic
// and newStatic are the settled switch-level snapshots of the previous
// and new generations under the analysis's fixed/seeded inputs; nodes
// whose static value changed poison the enumerations of every component
// containing a device they gate. Either snapshot may be nil (worst-case
// sensitization), in which case only structural seeds apply.
func (r *Result) Plan(oldStatic, newStatic []switchsim.Value) *Plan {
	nw := r.Net
	p := &Plan{res: r, ForceFull: r.forceFull}
	p.components()

	p.dbDirty = make([]bool, p.nComp)
	p.timeDirty = make([]bool, p.nComp)

	// Structural seeds from the batch. An edit touching a non-rail source
	// (capacitance on an input, a device terminal on one) also perturbs
	// the enumerations of every component the source borders, because the
	// source's fan-out paths read their structure. Rails are different:
	// enumeration never extends through a rail, so an edit at a rail
	// terminal only perturbs the component holding the edited element
	// itself — which its other seeds already cover.
	for idx := range r.seedNodes {
		n := nw.Nodes[idx]
		p.dirtyComp(n)
		if n.IsSource() && !n.IsRail() {
			for _, t := range n.Terms {
				if o := t.Other(n); o != nil {
					p.dirtyComp(o)
				}
			}
		}
	}
	// Sensitization seeds: a node whose settled value changed reshapes
	// the conduction oracle for every device it gates, wherever that
	// device's channel lives.
	if oldStatic != nil && newStatic != nil {
		limit := len(oldStatic)
		if len(newStatic) < limit {
			limit = len(newStatic)
		}
		for i := 0; i < limit; i++ {
			if oldStatic[i] == newStatic[i] {
				continue
			}
			n := nw.Nodes[i]
			p.dirtyComp(n)
			for _, t := range n.Gates {
				p.dirtyComp(t.A)
				p.dirtyComp(t.B)
			}
		}
	}

	// Time-dirty seeds: every db-dirty component, plus non-rail sources
	// bordering one — a stage enumerated inside a db-dirty group can
	// target the adjacent source (pass paths may end at an input), so its
	// arrival may move even though the source itself was not edited.
	queue := make([]int, 0, p.nComp)
	mark := func(c int) {
		if c >= 0 && !p.timeDirty[c] {
			p.timeDirty[c] = true
			queue = append(queue, c)
		}
	}
	for c := range p.dbDirty {
		if p.dbDirty[c] {
			mark(c)
		}
	}
	for _, t := range nw.Trans {
		ca, cb := p.comp[t.A.Index], p.comp[t.B.Index]
		if (ca >= 0 && p.dbDirty[ca]) || (cb >= 0 && p.dbDirty[cb]) {
			if t.A.IsSource() && !t.A.IsRail() {
				mark(ca)
			}
			if t.B.IsSource() && !t.B.IsRail() {
				mark(cb)
			}
		}
	}

	// Downstream closure: arrivals in a component gated by a dirty
	// component's node may move (in either direction), and so on
	// transitively; a dirty source additionally fans out through its
	// channel terminals (its own transition rides through pass devices
	// into the neighbouring groups). Components are never dirtied
	// "backwards" — there are no timing edges from a component into its
	// gating nodes.
	members := p.memberLists()
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		for _, idx := range members[c] {
			n := nw.Nodes[idx]
			for _, t := range n.Gates {
				mark(p.comp[t.A.Index])
				mark(p.comp[t.B.Index])
			}
			if n.IsSource() {
				for _, t := range n.Terms {
					if o := t.Other(n); o != nil {
						mark(p.comp[o.Index])
					}
				}
			}
		}
	}

	// Per-index maps.
	p.DirtyTrans = make([]bool, len(nw.Trans))
	for _, t := range nw.Trans {
		if (p.comp[t.A.Index] >= 0 && p.dbDirty[p.comp[t.A.Index]]) ||
			(p.comp[t.B.Index] >= 0 && p.dbDirty[p.comp[t.B.Index]]) {
			p.DirtyTrans[t.Index] = true
		}
	}
	for idx := range r.seedTrans {
		if idx < len(p.DirtyTrans) {
			p.DirtyTrans[idx] = true
		}
	}
	p.DBDirtyNode = make([]bool, len(nw.Nodes))
	p.dirtyNode = make([]bool, len(nw.Nodes))
	nonRail := 0
	for _, n := range nw.Nodes {
		c := p.comp[n.Index]
		if n.IsSource() {
			// A source's fan-out enumerations (From entries) read the
			// structure and sensitization of every adjacent component.
			for _, t := range n.Terms {
				o := t.Other(n)
				if o == nil {
					continue
				}
				if oc := p.comp[o.Index]; oc >= 0 && p.dbDirty[oc] {
					p.DBDirtyNode[n.Index] = true
					break
				}
			}
		}
		if c < 0 {
			continue // rail: arrivals never change
		}
		nonRail++
		if p.dbDirty[c] || n.Index >= r.oldNodes {
			p.DBDirtyNode[n.Index] = true
		}
		if p.timeDirty[c] || n.Index >= r.oldNodes {
			p.dirtyNode[n.Index] = true
			p.DirtyNodes++
		}
	}
	if nonRail > 0 {
		p.Frac = float64(p.DirtyNodes) / float64(nonRail)
	}
	if p.ForceFull {
		p.Frac = 1
	}
	return p
}

// Widen marks the components containing the given node indexes time-dirty
// and re-closes the downstream closure, growing the analyzer-facing dirty
// maps (dirtyNode, DirtyNodes, Frac). DB dirtiness is deliberately
// untouched: the caller widens regions whose structure is intact but whose
// recorded timing must be recomputed from scratch — a hierarchically
// stamped instance detaching to flat analysis carries no replay history,
// so its whole interior re-enters the dirty set even when the edit only
// grazed it.
func (p *Plan) Widen(nodeIdxs []int) {
	nw := p.res.Net
	var queue []int
	mark := func(c int) {
		if c >= 0 && !p.timeDirty[c] {
			p.timeDirty[c] = true
			queue = append(queue, c)
		}
	}
	for _, idx := range nodeIdxs {
		if idx >= 0 && idx < len(p.comp) {
			mark(p.comp[idx])
		}
	}
	if len(queue) == 0 {
		return
	}
	// Same downstream closure as Plan: dirty arrivals propagate through
	// gate fanout, and through source channels.
	members := p.memberLists()
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		for _, idx := range members[c] {
			n := nw.Nodes[idx]
			for _, t := range n.Gates {
				mark(p.comp[t.A.Index])
				mark(p.comp[t.B.Index])
			}
			if n.IsSource() {
				for _, t := range n.Terms {
					if o := t.Other(n); o != nil {
						mark(p.comp[o.Index])
					}
				}
			}
		}
	}
	// Refresh the per-node view from the widened component set.
	nonRail := 0
	p.DirtyNodes = 0
	for _, n := range nw.Nodes {
		c := p.comp[n.Index]
		if c < 0 {
			continue
		}
		nonRail++
		if p.timeDirty[c] || n.Index >= p.res.oldNodes {
			p.dirtyNode[n.Index] = true
		}
		if p.dirtyNode[n.Index] {
			p.DirtyNodes++
		}
	}
	if nonRail > 0 {
		p.Frac = float64(p.DirtyNodes) / float64(nonRail)
	}
	if p.ForceFull {
		p.Frac = 1
	}
}

// dirtyComp marks the component containing n db-dirty (no-op for rails).
func (p *Plan) dirtyComp(n *netlist.Node) {
	if c := p.comp[n.Index]; c >= 0 {
		p.dbDirty[c] = true
	}
}

// components labels the plan's components: maximal sets of non-source
// nodes joined by transistor channels, plus a singleton per non-rail
// source. Every device kind connects (even FlowOff and definitely-off
// devices — their geometry still loads their terminals), which makes the
// components a conservative superset of any oracle's conduction graph,
// exactly what invalidation needs.
func (p *Plan) components() {
	nw := p.res.Net
	p.comp = make([]int, len(nw.Nodes))
	for i := range p.comp {
		p.comp[i] = -1
	}
	var q []*netlist.Node
	for _, n := range nw.Nodes {
		if p.comp[n.Index] >= 0 {
			continue
		}
		if n.IsSource() {
			if !n.IsRail() {
				p.comp[n.Index] = p.nComp
				p.nComp++
			}
			continue
		}
		c := p.nComp
		p.nComp++
		p.comp[n.Index] = c
		q = append(q[:0], n)
		for len(q) > 0 {
			cur := q[0]
			q = q[1:]
			for _, t := range cur.Terms {
				o := t.Other(cur)
				if o == nil || o.IsSource() || p.comp[o.Index] >= 0 {
					continue
				}
				p.comp[o.Index] = c
				q = append(q, o)
			}
		}
	}
}

// memberLists groups node indexes by component.
func (p *Plan) memberLists() [][]int {
	members := make([][]int, p.nComp)
	for i, c := range p.comp {
		if c >= 0 {
			members[c] = append(members[c], i)
		}
	}
	return members
}

// NodeDirty reports whether node index i needs its arrival reset.
func (p *Plan) NodeDirty(i int) bool {
	return i < len(p.dirtyNode) && p.dirtyNode[i]
}

// TransTouchesDirty reports whether either channel terminal of t lies in
// a time-dirty component — i.e. whether a gate event on t can change any
// stale arrival.
func (p *Plan) TransTouchesDirty(t *netlist.Trans) bool {
	if c := p.comp[t.A.Index]; c >= 0 && p.timeDirty[c] {
		return true
	}
	if c := p.comp[t.B.Index]; c >= 0 && p.timeDirty[c] {
		return true
	}
	return false
}

// SourceTouchesDirty reports whether strong-source node n channels
// directly into a time-dirty component (its From stages must re-apply).
func (p *Plan) SourceTouchesDirty(n *netlist.Node) bool {
	for _, t := range n.Terms {
		o := t.Other(n)
		if o == nil {
			continue
		}
		if c := p.comp[o.Index]; c >= 0 && p.timeDirty[c] {
			return true
		}
	}
	return false
}
