// Metamorphic lattice suite: the strength order Ω > G1 > G2 > K2 > K1 is
// pinned rung by rung on hand-built circuits, and the engine's lattice
// monotonicity — more definite inputs or charges can only produce more
// definite settles, and capacitance matters only through the K2 size
// threshold — is checked on randomized generator circuits.
package switchsim

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/netlist"
	"repro/internal/tech"
)

const um = 1e-6

// TestStrengthLadder pins each adjacent rung of the strength order with
// the smallest circuit that makes the two strengths fight.
func TestStrengthLadder(t *testing.T) {
	p := tech.NMOS4()

	t.Run("omega-beats-g1", func(t *testing.T) {
		// A driven input (Ω) against an ON enhancement pulldown (G1).
		nw := netlist.New("ladder", p)
		in := nw.Node("in")
		nw.MarkInput(in)
		nw.AddTrans(tech.NEnh, nw.Vdd(), in, nw.GND(), 8*um, 2*um)
		s := New(nw)
		if err := s.SetInput(in, V1); err != nil {
			t.Fatal(err)
		}
		s.Settle()
		if got := s.Value(in); got != V1 {
			t.Errorf("Ω input vs G1 pulldown: %s, want 1", got)
		}
	})

	t.Run("g1-beats-g2", func(t *testing.T) {
		// The ratioed inverter: enhancement pulldown (G1) wins the fight
		// against the depletion pullup (G2) when the input is high.
		nw := netlist.New("ladder", p)
		in, out := nw.Node("in"), nw.Node("out")
		nw.MarkInput(in)
		nw.AddTrans(tech.NDep, out, nw.Vdd(), out, 2*um, 8*um)
		nw.AddTrans(tech.NEnh, in, out, nw.GND(), 8*um, 2*um)
		s := New(nw)
		if err := s.SetInput(in, V1); err != nil {
			t.Fatal(err)
		}
		s.Settle()
		if got := s.Value(out); got != V0 {
			t.Errorf("G1 pulldown vs G2 pullup: %s, want 0", got)
		}
	})

	t.Run("g2-beats-k2", func(t *testing.T) {
		// A depletion pullup (G2) recharges a high-cap (K2) node whose
		// stored charge says 0: driven beats stored, at any size.
		nw := netlist.New("ladder", p)
		bus := nw.Node("bus")
		nw.AddCap(bus, 2*K2CapFloor)
		nw.AddTrans(tech.NDep, bus, nw.Vdd(), bus, 2*um, 8*um)
		s := New(nw)
		if s.NodeSize(bus) != SK2 {
			t.Fatalf("bus size = %s, want K2", s.NodeSize(bus))
		}
		if err := s.SetValue(bus, V0); err != nil {
			t.Fatal(err)
		}
		s.Settle()
		if got := s.Value(bus); got != V1 {
			t.Errorf("G2 pullup vs K2 charge: %s, want 1", got)
		}
	})

	t.Run("k2-beats-k1", func(t *testing.T) {
		// Charge sharing through an ON pass device: the high-cap node's
		// charge overwrites the small node's, in both polarities.
		for _, busVal := range []Value{V0, V1} {
			nw := netlist.New("ladder", p)
			en := nw.Node("en")
			nw.MarkInput(en)
			bus, tap := nw.Node("bus"), nw.Node("tap")
			nw.AddCap(bus, 2*K2CapFloor)
			nw.AddTrans(tech.NEnh, en, bus, tap, 2*um, 2*um)
			s := New(nw)
			if s.NodeSize(bus) != SK2 || s.NodeSize(tap) != SK1 {
				t.Fatalf("sizes = %s/%s, want K2/K1", s.NodeSize(bus), s.NodeSize(tap))
			}
			if err := s.SetValue(bus, busVal); err != nil {
				t.Fatal(err)
			}
			other := V1
			if busVal == V1 {
				other = V0
			}
			if err := s.SetValue(tap, other); err != nil {
				t.Fatal(err)
			}
			if err := s.SetInput(en, V1); err != nil {
				t.Fatal(err)
			}
			s.Settle()
			if got := s.Value(tap); got != busVal {
				t.Errorf("K2 charge %s vs K1 charge %s: tap = %s, want %s",
					busVal, other, got, busVal)
			}
		}
	})

	t.Run("k1-vs-k1-is-x", func(t *testing.T) {
		// The control: equal strengths disagreeing join to X, so the
		// K2-beats-K1 outcome above really is the strength order at work.
		nw := netlist.New("ladder", p)
		en := nw.Node("en")
		nw.MarkInput(en)
		a, b := nw.Node("a"), nw.Node("b")
		nw.AddTrans(tech.NEnh, en, a, b, 2*um, 2*um)
		s := New(nw)
		if err := s.SetValue(a, V1); err != nil {
			t.Fatal(err)
		}
		if err := s.SetValue(b, V0); err != nil {
			t.Fatal(err)
		}
		if err := s.SetInput(en, V1); err != nil {
			t.Fatal(err)
		}
		s.Settle()
		if got, got2 := s.Value(a), s.Value(b); got != VX || got2 != VX {
			t.Errorf("K1 vs K1 disagreement: %s/%s, want X/X", got, got2)
		}
	})
}

// TestSizesAndReset covers the size-assignment table and the power-on
// reset: rails and inputs are Ω, precharged and high-cap nodes K2,
// everything else K1; Reset erases drives and restores unknown charge.
func TestSizesAndReset(t *testing.T) {
	p := tech.NMOS4()
	nw := netlist.New("sizes", p)
	in := nw.Node("in")
	nw.MarkInput(in)
	out := nw.Node("out")
	nw.AddTrans(tech.NDep, out, nw.Vdd(), out, 2*um, 8*um)
	nw.AddTrans(tech.NEnh, in, out, nw.GND(), 8*um, 2*um)
	big := nw.Node("big")
	nw.AddCap(big, 2*K2CapFloor)
	nw.AddTrans(tech.NEnh, in, out, big, 2*um, 2*um)

	s := New(nw)
	for _, tc := range []struct {
		n    *netlist.Node
		want Strength
	}{
		{nw.Vdd(), SOmega}, {nw.GND(), SOmega}, {in, SOmega},
		{big, SK2}, {out, SK1},
	} {
		if got := s.NodeSize(tc.n); got != tc.want {
			t.Errorf("size(%s) = %s, want %s", tc.n.Name, got, tc.want)
		}
	}
	for i, want := range []string{"-", "K1", "K2", "G2", "G1", "Ω"} {
		if got := Strength(i).String(); got != want {
			t.Errorf("Strength(%d).String() = %q, want %q", i, got, want)
		}
	}

	if err := s.SetInput(in, V1); err != nil {
		t.Fatal(err)
	}
	s.Settle()
	if got := s.Value(out); got != V0 {
		t.Fatalf("driven settle: out = %s, want 0", got)
	}
	s.Reset()
	if got := s.Value(out); got != VX {
		t.Errorf("after Reset: out = %s, want X (unknown charge)", got)
	}
	if got := s.Value(nw.Vdd()); got != V1 {
		t.Errorf("after Reset: Vdd = %s, want 1", got)
	}
	s.Settle()
	if got := s.Value(out); got != VX {
		t.Errorf("after Reset+Settle with released input: out = %s, want X", got)
	}
}

// latticeFamilies are the generator circuits the randomized relations run
// over: ratioed static logic, charge-sharing pass chains, a precharged
// bus with K2 storage, and wide decode.
var latticeFamilies = []string{"invchain:4", "passchain:4", "bus:3", "decoder:2"}

// TestMetamorphicXMonotonicity: the settle function is monotone over the
// information order X ⊑ 0, X ⊑ 1. Degrading any subset of a definite
// input vector to X (released) may lose information but never invent it:
// wherever the degraded settle is still definite, it must agree with the
// definite settle.
func TestMetamorphicXMonotonicity(t *testing.T) {
	p := tech.NMOS4()
	rng := rand.New(rand.NewSource(7))
	for _, spec := range latticeFamilies {
		nw, err := gen.Build(spec, p)
		if err != nil {
			t.Fatalf("gen.Build(%q): %v", spec, err)
		}
		inputs := nw.Inputs()
		for trial := 0; trial < 25; trial++ {
			vec := make([]Value, len(inputs))
			for i := range vec {
				vec[i] = FromBool(rng.Intn(2) == 1)
			}
			definite, _ := scalarReference(nw, inputs, vec)
			degraded := make([]Value, len(vec))
			copy(degraded, vec)
			for i := range degraded {
				if rng.Intn(3) == 0 {
					degraded[i] = VX
				}
			}
			relaxed, _ := scalarReference(nw, inputs, degraded)
			for n := range relaxed {
				if relaxed[n] != VX && relaxed[n] != definite[n] {
					t.Errorf("%s trial %d: node %s = %s under degraded inputs, %s under definite — X-monotonicity violated",
						spec, trial, nw.Nodes[n].Name, relaxed[n], definite[n])
				}
			}
		}
	}
}

// TestMetamorphicChargeMonotonicity applies the same information order to
// stored charge: settling from an unknown (power-on) charge state must
// refine to whatever both definite charge states agree on. For a sampled
// storage node, settle-with-X-charge definite ⇒ both settle-with-0 and
// settle-with-1 produce that same value.
func TestMetamorphicChargeMonotonicity(t *testing.T) {
	p := tech.NMOS4()
	rng := rand.New(rand.NewSource(11))
	for _, spec := range latticeFamilies {
		nw, err := gen.Build(spec, p)
		if err != nil {
			t.Fatalf("gen.Build(%q): %v", spec, err)
		}
		inputs := nw.Inputs()
		var storage []*netlist.Node
		for _, n := range nw.Nodes {
			if !n.IsRail() && n.Kind != netlist.KindInput {
				storage = append(storage, n)
			}
		}
		if len(storage) == 0 {
			t.Fatalf("%s: no storage nodes", spec)
		}
		settle := func(vec []Value, target *netlist.Node, charge Value) []Value {
			s := New(nw)
			if charge != VX {
				if err := s.SetValue(target, charge); err != nil {
					t.Fatal(err)
				}
			}
			for i, in := range inputs {
				if vec[i] != VX {
					if err := s.SetInput(in, vec[i]); err != nil {
						t.Fatal(err)
					}
				}
			}
			s.Settle()
			return s.Snapshot()
		}
		for trial := 0; trial < 15; trial++ {
			vec := make([]Value, len(inputs))
			for i := range vec {
				vec[i] = Value(rng.Intn(3)) // V0, V1, VX
			}
			target := storage[rng.Intn(len(storage))]
			unknown := settle(vec, target, VX)
			low := settle(vec, target, V0)
			high := settle(vec, target, V1)
			for n := range unknown {
				if unknown[n] == VX {
					continue
				}
				if low[n] != unknown[n] || high[n] != unknown[n] {
					t.Errorf("%s trial %d: node %s = %s from unknown charge on %s but %s/%s from definite charges",
						spec, trial, nw.Nodes[n].Name, unknown[n], target.Name, low[n], high[n])
				}
			}
		}
	}
}

// TestMetamorphicCapInvariance: capacitance reaches the lattice only
// through the K2 size threshold. Adding capacitance that does not move
// any node across K2CapFloor must leave every settled value, the sweep
// count and the oscillation flag bit-identical — on the scalar and the
// batch engine.
func TestMetamorphicCapInvariance(t *testing.T) {
	p := tech.NMOS4()
	rng := rand.New(rand.NewSource(23))
	for _, spec := range latticeFamilies {
		nw, err := gen.Build(spec, p)
		if err != nil {
			t.Fatalf("gen.Build(%q): %v", spec, err)
		}
		bumped, err := gen.Build(spec, p)
		if err != nil {
			t.Fatal(err)
		}
		// Bump every non-rail node to just under the floor (or leave K2
		// nodes over it): sizes are unchanged by construction.
		want := NodeSizes(nw)
		for _, n := range bumped.Nodes {
			if n.IsRail() || bumped.NodeCap(n) >= K2CapFloor {
				continue
			}
			room := K2CapFloor - bumped.NodeCap(n)
			bumped.AddCap(n, room*0.9)
		}
		if got := NodeSizes(bumped); len(got) != len(want) {
			t.Fatalf("%s: node count changed", spec)
		} else {
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s: bump moved node %s across the size threshold (%s → %s)",
						spec, bumped.Nodes[i].Name, want[i], got[i])
				}
			}
		}
		inputs := nw.Inputs()
		vecs := randomVectors(rng, len(inputs), 40)
		base, err := NewBatch(nw).Run(vecs, nil)
		if err != nil {
			t.Fatal(err)
		}
		moved, err := NewBatch(bumped).Run(vecs, nil)
		if err != nil {
			t.Fatal(err)
		}
		if base.Sweeps != moved.Sweeps {
			t.Errorf("%s: sweeps %d → %d under sub-threshold cap bump", spec, base.Sweeps, moved.Sweeps)
		}
		for v := 0; v < base.Vectors; v++ {
			if base.Osc[v] != moved.Osc[v] {
				t.Errorf("%s vector %d: oscillation flag changed", spec, v)
			}
			for n := range base.Out[v] {
				if base.Out[v][n] != moved.Out[v][n] {
					t.Errorf("%s vector %d: node %s = %s → %s under sub-threshold cap bump",
						spec, v, nw.Nodes[n].Name, base.Out[v][n], moved.Out[v][n])
				}
			}
		}
		// Scalar spot-check on the first vector.
		sBase, _ := scalarReference(nw, inputs, vecs[:len(inputs)])
		sMoved, _ := scalarReference(bumped, bumped.Inputs(), vecs[:len(inputs)])
		for n := range sBase {
			if sBase[n] != sMoved[n] {
				t.Errorf("%s scalar: node %s = %s → %s under sub-threshold cap bump",
					spec, nw.Nodes[n].Name, sBase[n], sMoved[n])
			}
		}
	}
}

// TestMetamorphicStrengthUpgrade: raising a charge fight's loser across
// the K2 threshold flips the X to the upgraded side — strength-order
// monotonicity observed through the cap knob that feeds it.
func TestMetamorphicStrengthUpgrade(t *testing.T) {
	p := tech.NMOS4()
	build := func(busCap float64) (*netlist.Network, *netlist.Node, *netlist.Node, *netlist.Node) {
		nw := netlist.New("upgrade", p)
		en := nw.Node("en")
		nw.MarkInput(en)
		bus, tap := nw.Node("bus"), nw.Node("tap")
		if busCap > 0 {
			nw.AddCap(bus, busCap)
		}
		nw.AddTrans(tech.NEnh, en, bus, tap, 2*um, 2*um)
		return nw, en, bus, tap
	}
	run := func(nw *netlist.Network, en, bus, tap *netlist.Node) Value {
		s := New(nw)
		if err := s.SetValue(bus, V1); err != nil {
			t.Fatal(err)
		}
		if err := s.SetValue(tap, V0); err != nil {
			t.Fatal(err)
		}
		if err := s.SetInput(en, V1); err != nil {
			t.Fatal(err)
		}
		s.Settle()
		return s.Value(tap)
	}
	nw, en, bus, tap := build(0)
	if got := run(nw, en, bus, tap); got != VX {
		t.Fatalf("equal-strength charge fight: tap = %s, want X", got)
	}
	nw, en, bus, tap = build(2 * K2CapFloor)
	if got := run(nw, en, bus, tap); got != V1 {
		t.Fatalf("K2-upgraded charge fight: tap = %s, want 1 (bus charge wins)", got)
	}
}
