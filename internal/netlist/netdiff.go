// Structural network comparison. The parallel parser, the snapshot
// loader, and the incremental engine all promise the *same* network the
// serial parser builds — not an equivalent one. DiffNetworks is that
// promise made checkable: an exhaustive field-by-field comparison,
// including index assignment and adjacency order, with exact float
// equality (1 ulp of drift in a capacitance would already mean a code
// path multiplied in a different order).
package netlist

import "fmt"

// DiffNetworks reports the first structural difference between two
// networks, or nil if they are identical: same node order and indexes,
// same transistor order, same adjacency order, same capacitances,
// geometry, kinds and flags, bit for bit.
func DiffNetworks(a, b *Network) error {
	if a.Name != b.Name {
		return fmt.Errorf("name: %q vs %q", a.Name, b.Name)
	}
	if a.Tech.Name != b.Tech.Name {
		return fmt.Errorf("tech: %q vs %q", a.Tech.Name, b.Tech.Name)
	}
	if len(a.Nodes) != len(b.Nodes) {
		return fmt.Errorf("node count: %d vs %d", len(a.Nodes), len(b.Nodes))
	}
	if len(a.Trans) != len(b.Trans) {
		return fmt.Errorf("transistor count: %d vs %d", len(a.Trans), len(b.Trans))
	}
	for i, an := range a.Nodes {
		bn := b.Nodes[i]
		if an.Index != bn.Index || an.Name != bn.Name {
			return fmt.Errorf("node %d: %d/%q vs %d/%q", i, an.Index, an.Name, bn.Index, bn.Name)
		}
		if an.Kind != bn.Kind {
			return fmt.Errorf("node %q: kind %v vs %v", an.Name, an.Kind, bn.Kind)
		}
		if an.Cap != bn.Cap {
			return fmt.Errorf("node %q: cap %v vs %v", an.Name, an.Cap, bn.Cap)
		}
		if an.Precharged != bn.Precharged {
			return fmt.Errorf("node %q: precharged %v vs %v", an.Name, an.Precharged, bn.Precharged)
		}
		if len(an.Gates) != len(bn.Gates) {
			return fmt.Errorf("node %q: gate fanout %d vs %d", an.Name, len(an.Gates), len(bn.Gates))
		}
		for j := range an.Gates {
			if an.Gates[j].Index != bn.Gates[j].Index {
				return fmt.Errorf("node %q: gates[%d] = trans %d vs %d", an.Name, j, an.Gates[j].Index, bn.Gates[j].Index)
			}
		}
		if len(an.Terms) != len(bn.Terms) {
			return fmt.Errorf("node %q: terminal fanout %d vs %d", an.Name, len(an.Terms), len(bn.Terms))
		}
		for j := range an.Terms {
			if an.Terms[j].Index != bn.Terms[j].Index {
				return fmt.Errorf("node %q: terms[%d] = trans %d vs %d", an.Name, j, an.Terms[j].Index, bn.Terms[j].Index)
			}
		}
	}
	for i, at := range a.Trans {
		bt := b.Trans[i]
		if at.Index != bt.Index {
			return fmt.Errorf("trans %d: index %d vs %d", i, at.Index, bt.Index)
		}
		if at.Type != bt.Type {
			return fmt.Errorf("trans %d: type %v vs %v", i, at.Type, bt.Type)
		}
		if at.Gate.Index != bt.Gate.Index {
			return fmt.Errorf("trans %d: gate %q vs %q", i, at.Gate.Name, bt.Gate.Name)
		}
		if at.A.Index != bt.A.Index || at.B.Index != bt.B.Index {
			return fmt.Errorf("trans %d: terminals %q/%q vs %q/%q", i, at.A.Name, at.B.Name, bt.A.Name, bt.B.Name)
		}
		if at.W != bt.W || at.L != bt.L {
			return fmt.Errorf("trans %d: geometry %v x %v vs %v x %v", i, at.W, at.L, bt.W, bt.L)
		}
		if at.Flow != bt.Flow {
			return fmt.Errorf("trans %d: flow %v vs %v", i, at.Flow, bt.Flow)
		}
		if at.ROverride != bt.ROverride {
			return fmt.Errorf("trans %d: r override %v vs %v", i, at.ROverride, bt.ROverride)
		}
	}
	if len(a.Instances) != len(b.Instances) {
		return fmt.Errorf("instance count: %d vs %d", len(a.Instances), len(b.Instances))
	}
	for i, ai := range a.Instances {
		bi := b.Instances[i]
		if ai != bi {
			return fmt.Errorf("instance %d: %q [%d,%d) vs %q [%d,%d)",
				i, ai.Path, ai.TransLo, ai.TransHi, bi.Path, bi.TransLo, bi.TransHi)
		}
	}
	return nil
}
