// Memory-mapped snapshot loading: the zero-copy half of the v2 format.
// OpenMapped maps a .simx v2 file read-only, validates it (header and
// payload CRCs, bounds-checked section table), and builds a Network
// whose node names are string views straight into the mapping — no file
// read, no payload copy, no per-record decode, and no eager name-index
// build (see Network.ensureByName). The mapping is shared (MAP_SHARED,
// PROT_READ), so every mapping of the same file — across sessions or
// across processes — aliases one set of physical page-cache pages: the
// RSS cost of the name payload is paid once per machine, not per load.
//
// Lifetime: node-name string headers point into the mapped pages and
// escape freely into clones, reports and analysis results, so the
// mapping must outlive every structure that may still hold such a
// string. Close is therefore explicitly the caller's assertion that
// nothing derived from the network is alive; callers that cannot prove
// that (CLIs, the server's shared arena) simply never unmap — read-only
// file-backed pages are reclaimable by the OS under pressure, so a
// retained mapping costs address space, not wired memory.
package netlist

import (
	"fmt"
	"os"
	"sync"

	"repro/internal/tech"
)

// MmapSupported reports whether this platform has the memory-mapped
// fast path; when false OpenMapped always errors and every caller's
// heap fallback serves instead.
const MmapSupported = mmapSupported

// Mapped is a Network backed by a read-only memory mapping of a .simx
// v2 file.
type Mapped struct {
	// Net is the materialized network. Its node Name strings alias the
	// mapping; see the package comment on lifetime.
	Net *Network
	// SourceHash is the cache key recorded at write time.
	SourceHash [32]byte

	data      []byte
	closeOnce sync.Once
	closeErr  error
}

// Size returns the mapped length in bytes — the address-space cost of
// keeping the view alive, useful for RSS accounting.
func (m *Mapped) Size() int { return len(m.data) }

// Close unmaps the file. The caller asserts that no string derived from
// the network (names, cloned networks, formatted reports) is reachable;
// violating that turns later reads into faults. Closing twice is safe.
func (m *Mapped) Close() error {
	m.closeOnce.Do(func() {
		if m.data != nil {
			m.closeErr = munmapFile(m.data)
			m.data = nil
		}
	})
	return m.closeErr
}

// OpenMapped maps the .simx v2 file at path and builds its zero-copy
// Network view. Any failure — unsupported platform, v1 file, corrupt or
// truncated image — is an error; callers fall back to ReadSnapshot,
// which handles both versions on the heap.
func OpenMapped(path string, p *tech.Params) (*Mapped, error) {
	if !mmapSupported {
		return nil, fmt.Errorf("simx: mmap not supported on this platform")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() // the mapping survives the descriptor
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if !st.Mode().IsRegular() || size < v2HeaderSize || size > int64(int(^uint(0)>>1)) {
		return nil, fmt.Errorf("simx: not a mappable snapshot file")
	}
	data, err := mmapFile(f, int(size))
	if err != nil {
		return nil, fmt.Errorf("simx: mmap: %w", err)
	}
	m := &Mapped{data: data}
	v, err := parseV2(data)
	if err != nil {
		m.Close()
		return nil, err
	}
	// Payload checksum and network build overlap: the checksum walks
	// every payload byte once, the build is bounds-checked against the
	// (header-CRC-protected) section table and never trusts payload
	// contents for safety, so neither needs the other to finish first.
	// Both must complete before any Close — unmapping under a live pass
	// would fault — and the checksum verdict wins, so a corrupt file
	// reports "payload checksum mismatch" whether or not the build also
	// tripped over the damage.
	crcErr := make(chan error, 1)
	go func() { crcErr <- v.verifyPayload() }()
	nw, hash, buildErr := buildV2(v, p, true)
	if err := <-crcErr; err != nil {
		m.Close()
		return nil, err
	}
	if buildErr != nil {
		m.Close()
		return nil, buildErr
	}
	m.Net, m.SourceHash = nw, hash
	return m, nil
}
