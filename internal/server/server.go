// Package server is the crystald analysis service: a long-lived HTTP/JSON
// daemon holding parsed netlists, compiled network views and stage-DB
// generations in a bounded LRU session cache, so the designer loop —
// load, analyze, edit, re-verify — pays the parse/compile/enumerate cost
// once and every subsequent query runs against resident state. Edits
// speak the same script grammar as `crystal -edits` and are served by the
// incremental engine, with honest reporting when it falls back to a full
// drain.
//
// Endpoints:
//
//	POST   /v1/sessions               load a .sim netlist (content-hash dedup)
//	GET    /v1/sessions               list resident sessions
//	GET    /v1/sessions/{id}          one session's state
//	DELETE /v1/sessions/{id}          evict a session
//	POST   /v1/sessions/{id}/analyze  full analysis ({"workers": N})
//	POST   /v1/sessions/{id}/edits    edit script ({"script": "..."}), incremental
//	POST   /v1/sessions/{id}/simulate settle input vectors ({"vectors": ["01X", ...]})
//	GET    /v1/sessions/{id}/critical top-N critical paths (?n=, from snapshot)
//	GET    /healthz                   liveness
//	GET    /metrics                   counters + latency percentiles (JSON)
package server

import (
	"container/list"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/incremental"
)

// Options tunes the server.
type Options struct {
	// MaxSessions bounds the LRU session cache (default 16). A session is
	// the dominant memory unit — network + stage DB + arrivals — so this
	// is the daemon's memory knob; see docs/SERVER.md for sizing.
	MaxSessions int
	// DefaultWorkers is the drain parallelism when a request does not set
	// one (0 selects GOMAXPROCS); session loads use the same setting for
	// the parallel .sim tokenizer.
	DefaultWorkers int
	// NoReorder disables the compiled network's RCM locality layout in
	// every session analyzer (core.Options.NoReorder). Results are
	// bit-identical either way; cmd/crystald exposes this as -reorder.
	NoReorder bool
	// Hier enables hierarchical macromodel analysis in every session
	// analyzer (core.Options.Hier): replicated instances analyze one
	// representative and stamp the timing onto the other copies. Results
	// are bit-identical either way; analyze responses then carry a "hier"
	// provenance block and /metrics a hier.* section. cmd/crystald
	// exposes this as -hier.
	Hier bool
	// SnapshotDir, when non-empty, enables the .simx warm-start cache:
	// every parsed session is persisted there keyed by its network
	// identity (source hash + technology + name), and a later POST of
	// the same network — including after a daemon restart, or under
	// different analysis directives — loads the binary snapshot instead
	// of re-parsing. The directory is created if missing.
	SnapshotDir string
	// NoSharedViews disables the shared network arena: warm loads then
	// heap-decode a private copy per session ("snapshot" source) instead
	// of aliasing one read-only mapped view ("mmap" source). The arena
	// requires SnapshotDir; cmd/crystald exposes this as -netarena.
	NoSharedViews bool
	// JobWorkers is the async job plane's worker-pool size (default 2):
	// how many {"async": true} analyzes/edit scripts execute
	// concurrently. Jobs of one session always serialize regardless.
	JobWorkers int
	// JobQueueDepth bounds the admitted-but-undispatched job queue
	// (default 32). A full queue answers 429 + Retry-After — the
	// admission-control backpressure signal; see docs/SERVER.md.
	JobQueueDepth int
	// JobDelay and JobFailEvery are fault-injection knobs for the load/
	// chaos harness (cmd/loadgen) and the eviction-race tests: every job
	// execution is stretched by JobDelay, and every JobFailEvery'th one
	// fails with a synthetic 500. Zero (the default) disables both.
	JobDelay     time.Duration
	JobFailEvery int
}

func (o Options) fill() Options {
	if o.MaxSessions <= 0 {
		o.MaxSessions = 16
	}
	if o.JobWorkers <= 0 {
		o.JobWorkers = 2
	}
	if o.JobQueueDepth <= 0 {
		o.JobQueueDepth = 32
	}
	return o
}

// Server is the HTTP handler plus the session cache. Create with New;
// safe for concurrent use.
type Server struct {
	opts Options
	mux  *http.ServeMux
	m    metrics

	// arena shares read-only mapped network views across sessions of
	// the same chip; nil when disabled (no snapshot dir, NoSharedViews).
	arena *netArena

	// jobs is the async job plane: bounded worker-pool queue behind
	// {"async": true} analyze/edits submissions (see jobs.go).
	jobs *jobPlane

	mu     sync.Mutex
	byID   map[string]*list.Element
	byHash map[string]*list.Element // only pristine (un-edited) sessions
	lru    *list.List               // front = most recently used; values are *session
	seq    int64                    // id disambiguator for diverged reloads
}

// New creates a server.
func New(opts Options) *Server {
	opts = opts.fill()
	if opts.SnapshotDir != "" {
		if err := os.MkdirAll(opts.SnapshotDir, 0o755); err != nil {
			// No cache directory, no cache — the daemon still serves.
			opts.SnapshotDir = ""
		}
	}
	sv := &Server{
		opts:   opts,
		mux:    http.NewServeMux(),
		byID:   make(map[string]*list.Element),
		byHash: make(map[string]*list.Element),
		lru:    list.New(),
	}
	if opts.SnapshotDir != "" && !opts.NoSharedViews {
		// On platforms without mmap every acquire fails and sessions use
		// the heap decoder; the arena then just never fills.
		sv.arena = newNetArena()
	}
	sv.jobs = newJobPlane(opts.JobWorkers, opts.JobQueueDepth, opts.JobDelay, opts.JobFailEvery, &sv.m)
	sv.mux.HandleFunc("POST /v1/sessions", sv.handleCreate)
	sv.mux.HandleFunc("GET /v1/sessions", sv.handleList)
	sv.mux.HandleFunc("GET /v1/sessions/{id}", sv.handleInfo)
	sv.mux.HandleFunc("DELETE /v1/sessions/{id}", sv.handleDelete)
	sv.mux.HandleFunc("POST /v1/sessions/{id}/analyze", sv.handleAnalyze)
	sv.mux.HandleFunc("POST /v1/sessions/{id}/edits", sv.handleEdits)
	sv.mux.HandleFunc("POST /v1/sessions/{id}/simulate", sv.handleSimulate)
	sv.mux.HandleFunc("GET /v1/sessions/{id}/critical", sv.handleCritical)
	sv.mux.HandleFunc("GET /v1/jobs/{id}", sv.handleJob)
	sv.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	sv.mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, sv.MetricsSnapshot())
	})
	return sv
}

// ServeHTTP implements http.Handler.
func (sv *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { sv.mux.ServeHTTP(w, r) }

// MetricsSnapshot returns the current metrics document (also served at
// /metrics; cmd/crystald publishes it through expvar).
func (sv *Server) MetricsSnapshot() MetricsSnapshot {
	sv.mu.Lock()
	live := sv.lru.Len()
	sv.mu.Unlock()
	queued, running, draining := sv.jobs.gauges()
	return sv.m.snapshot(live, sv.arena.stats(), jobGauges{
		Queued: queued, Running: running, Draining: draining,
		Capacity: sv.opts.JobQueueDepth,
	})
}

// httpError is the uniform error body.
type httpError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, httpError{Error: fmt.Sprintf(format, args...)})
}

// lookup fetches a session by id and bumps its LRU recency.
func (sv *Server) lookup(id string) *session {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	el, ok := sv.byID[id]
	if !ok {
		return nil
	}
	sv.lru.MoveToFront(el)
	return el.Value.(*session)
}

// insert adds a session to the cache, evicting from the LRU tail past the
// bound. The caller has verified no pristine session shares the hash.
func (sv *Server) insert(s *session) {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	el := sv.lru.PushFront(s)
	sv.byID[s.id] = el
	if _, taken := sv.byHash[s.hash]; !taken {
		sv.byHash[s.hash] = el
	}
	for sv.lru.Len() > sv.opts.MaxSessions {
		tail := sv.lru.Back()
		sv.removeLocked(tail)
		sv.m.sessionsEvicted.Add(1)
	}
}

// removeLocked unlinks one cache element. Callers hold sv.mu. In-flight
// requests holding the session pointer finish normally — eviction only
// stops new lookups; the session's memory is reclaimed when the last
// handler returns.
func (sv *Server) removeLocked(el *list.Element) {
	s := el.Value.(*session)
	sv.lru.Remove(el)
	delete(sv.byID, s.id)
	if cur, ok := sv.byHash[s.hash]; ok && cur == el {
		delete(sv.byHash, s.hash)
	}
	if s.shared {
		// Drop the arena reference; the mapping itself stays resident
		// (in-flight handlers may still hold the session, and name
		// strings alias the mapped pages).
		s.shared = false
		sv.arena.release(s.akey)
	}
}

// markEdited records that a session diverged from its loaded source: it
// no longer answers content-hash dedup (a re-POST of the same source must
// get a pristine session, not someone's edit state).
func (sv *Server) markEdited(s *session) {
	sv.mu.Lock()
	if el, ok := sv.byHash[s.hash]; ok && el.Value.(*session) == s {
		delete(sv.byHash, s.hash)
	}
	sv.mu.Unlock()
}

// createResponse is the POST /v1/sessions reply.
type createResponse struct {
	Session string `json:"session"`
	Cached  bool   `json:"cached"`
	// Source reports how the network was obtained: "parse", "snapshot"
	// (heap-decoded from the .simx warm-start cache, no parsing), or
	// "mmap" (aliasing the shared arena's read-only mapped view).
	// Empty when the snapshot cache is disabled.
	Source      string `json:"source,omitempty"`
	Name        string `json:"name"`
	Tech        string `json:"tech"`
	Model       string `json:"model"`
	Tables      string `json:"tables"`
	Nodes       int    `json:"nodes"`
	Transistors int    `json:"transistors"`
}

func (sv *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var cfg SessionConfig
	if err := json.NewDecoder(r.Body).Decode(&cfg); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if err := cfg.fill(); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	hash := cfg.hash()

	// Content-hash dedup: a pristine session over identical content
	// answers for every identical load.
	sv.mu.Lock()
	if el, ok := sv.byHash[hash]; ok {
		s := el.Value.(*session)
		sv.lru.MoveToFront(el)
		sv.mu.Unlock()
		sv.m.sessionsDeduped.Add(1)
		writeJSON(w, http.StatusOK, sv.describe(s, true))
		return
	}
	sv.seq++
	seq := sv.seq
	sv.mu.Unlock()

	id := hash[:12]
	if sv.lookup(id) != nil { // hash prefix taken by a diverged session
		id = fmt.Sprintf("%s.%d", hash[:12], seq)
	}
	s, err := newSession(id, cfg, sv.opts.SnapshotDir, sv.opts.DefaultWorkers, sv.opts.NoReorder, sv.opts.Hier, sv.arena)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if sv.opts.SnapshotDir != "" {
		if s.source != "parse" { // "snapshot" or "mmap": the cache served
			sv.m.snapshotHits.Add(1)
		} else {
			sv.m.snapshotMisses.Add(1)
		}
		if s.snapWrote {
			sv.m.snapshotWrites.Add(1)
		}
	}
	sv.insert(s)
	sv.m.sessionsCreated.Add(1)
	writeJSON(w, http.StatusCreated, sv.describe(s, false))
}

func (sv *Server) describe(s *session, cached bool) createResponse {
	st := s.nw.Stats()
	resp := createResponse{
		Session: s.id, Cached: cached,
		Name: s.cfg.Name, Tech: s.cfg.Tech, Model: s.cfg.Model, Tables: s.cfg.Tables,
		Nodes: st.Nodes, Transistors: st.Trans,
	}
	if sv.opts.SnapshotDir != "" {
		resp.Source = s.source
	}
	return resp
}

// sessionInfo is one row of GET /v1/sessions (and the GET /{id} body).
type sessionInfo struct {
	Session     string  `json:"session"`
	Name        string  `json:"name"`
	Nodes       int     `json:"nodes"`
	Transistors int     `json:"transistors"`
	Analyzed    bool    `json:"analyzed"`
	Edited      bool    `json:"edited"`
	Barriers    int     `json:"barriers"`
	Epoch       uint64  `json:"epoch"`
	CriticalNs  float64 `json:"critical_ns"`
}

func (sv *Server) info(s *session) sessionInfo {
	st := s.nw.Stats()
	inf := sessionInfo{
		Session: s.id, Name: s.cfg.Name,
		Nodes: st.Nodes, Transistors: st.Trans,
	}
	s.mu.Lock()
	inf.Edited, inf.Barriers = s.edited, s.barriers
	s.mu.Unlock()
	if snap := s.snap.Load(); snap != nil {
		inf.Analyzed = true
		inf.Epoch = snap.Epoch
		inf.CriticalNs = snap.CriticalNs
	}
	return inf
}

func (sv *Server) handleList(w http.ResponseWriter, r *http.Request) {
	sv.mu.Lock()
	sessions := make([]*session, 0, sv.lru.Len())
	for el := sv.lru.Front(); el != nil; el = el.Next() {
		sessions = append(sessions, el.Value.(*session))
	}
	sv.mu.Unlock()
	out := make([]sessionInfo, 0, len(sessions))
	for _, s := range sessions {
		out = append(out, sv.info(s))
	}
	writeJSON(w, http.StatusOK, map[string]any{"sessions": out})
}

func (sv *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	s := sv.lookup(r.PathValue("id"))
	if s == nil {
		writeErr(w, http.StatusNotFound, "no session %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, sv.info(s))
}

func (sv *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sv.mu.Lock()
	el, ok := sv.byID[id]
	if ok {
		sv.removeLocked(el)
	}
	sv.mu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, "no session %q", id)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}

// analyzeRequest is the POST .../analyze body (all fields optional).
type analyzeRequest struct {
	// Workers sets the drain parallelism (0 = server default; results are
	// bit-identical at every setting).
	Workers int `json:"workers,omitempty"`
	// Force reruns the full drain even when the snapshot is current.
	Force bool `json:"force,omitempty"`
	// Async detaches the run from the connection: the handler answers
	// 202 with a job id immediately and the analysis executes on the job
	// plane; poll GET /v1/jobs/{id} for the result (identical to the
	// synchronous body, modulo duration_ns).
	Async bool `json:"async,omitempty"`
}

// analyzeResponse is the analyze reply: the snapshot plus run metadata.
type analyzeResponse struct {
	*Snapshot
	Cached     bool  `json:"cached"`
	Workers    int   `json:"workers"`
	DurationNs int64 `json:"duration_ns"`
}

func (sv *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	s := sv.lookup(r.PathValue("id"))
	if s == nil {
		writeErr(w, http.StatusNotFound, "no session %q", r.PathValue("id"))
		return
	}
	var req analyzeRequest
	if err := decodeOptional(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Async {
		sv.submitJob(w, s, "analyze", func() (int, any) { return sv.analyzeSession(s, req) })
		return
	}
	st, v := sv.analyzeSession(s, req)
	writeJSON(w, st, v)
}

// analyzeSession runs one analyze request to completion and returns the
// HTTP status plus response body — shared verbatim by the synchronous
// handler and the job plane, so an async result is the synchronous
// response.
func (sv *Server) analyzeSession(s *session, req analyzeRequest) (int, any) {
	workers := req.Workers
	if workers == 0 {
		workers = sv.opts.DefaultWorkers
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	// Snapshot still current for this worker count: serve it. Worker
	// count changes rebuild — results are bit-identical either way, the
	// rebuild is purely so the requested parallelism really is in effect
	// for subsequent edit drains.
	if snap := s.snap.Load(); snap != nil && !req.Force && s.workers == workers {
		sv.m.analyzesCached.Add(1)
		return http.StatusOK, analyzeResponse{Snapshot: snap, Cached: true, Workers: workers}
	}
	a, err := s.buildAnalyzer(workers, s.a)
	if err != nil {
		return http.StatusBadRequest, httpError{Error: err.Error()}
	}
	start := time.Now()
	if err := a.Run(); err != nil {
		return http.StatusUnprocessableEntity, httpError{Error: err.Error()}
	}
	dur := time.Since(start)
	s.a, s.workers = a, workers
	snap := s.buildSnapshot()
	if a.Opts.Hier {
		hs := a.HierStats()
		sv.m.hierAnalyzes.Add(1)
		sv.m.hierInstances.Add(int64(hs.Instances))
		sv.m.hierStamped.Add(int64(hs.Stamped))
		sv.m.hierFlat.Add(int64(hs.Flat))
	}
	sv.m.analyzesFull.Add(1)
	sv.m.analyzeLatency.observe(dur)
	sv.m.observeDrain(a.DrainStats()) // fresh analyzer: stats are this run's
	return http.StatusOK, analyzeResponse{
		Snapshot: snap, Workers: workers, DurationNs: dur.Nanoseconds(),
	}
}

// editsRequest is the POST .../edits body: an edit script in the same
// grammar as `crystal -edits` (see internal/incremental).
type editsRequest struct {
	Script string `json:"script"`
	// Workers optionally retunes the drain parallelism for the replay
	// (0 keeps the session's current setting).
	Workers int `json:"workers,omitempty"`
	// Async runs the script on the job plane: 202 + job id immediately,
	// poll GET /v1/jobs/{id} for the barrier results. Long edit scripts
	// (every barrier is a re-analysis) are the other connection-holding
	// request class besides analyze.
	Async bool `json:"async,omitempty"`
}

// barrierResult reports one `run` barrier: the Reanalyze outcome — honest
// about full fallbacks and why — plus the refreshed report.
type barrierResult struct {
	Line            int     `json:"line"`
	Incremental     bool    `json:"incremental"`
	Reason          string  `json:"reason,omitempty"` // fallback reason when full
	DirtyNodes      int     `json:"dirty_nodes"`
	TotalNodes      int     `json:"total_nodes"`
	DirtyFrac       float64 `json:"dirty_frac"`
	Epoch           uint64  `json:"epoch"`
	StagesEvaluated int     `json:"stages_evaluated"`
	DurationNs      int64   `json:"duration_ns"`
	Status          string  `json:"status"` // the CLI-format status line
	Report          string  `json:"report"`
}

type editsResponse struct {
	Barriers []barrierResult `json:"barriers"`
	Snapshot *Snapshot       `json:"snapshot"`
}

func (sv *Server) handleEdits(w http.ResponseWriter, r *http.Request) {
	s := sv.lookup(r.PathValue("id"))
	if s == nil {
		writeErr(w, http.StatusNotFound, "no session %q", r.PathValue("id"))
		return
	}
	var req editsRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if strings.TrimSpace(req.Script) == "" {
		writeErr(w, http.StatusBadRequest, "missing script")
		return
	}
	if req.Async {
		sv.submitJob(w, s, "edits", func() (int, any) { return sv.editsSession(s, req) })
		return
	}
	st, v := sv.editsSession(s, req)
	writeJSON(w, st, v)
}

// editsSession applies one edit script to completion and returns the
// HTTP status plus response body — shared by the synchronous handler and
// the job plane, like analyzeSession.
func (sv *Server) editsSession(s *session, req editsRequest) (int, any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.a == nil {
		return http.StatusConflict, httpError{
			Error: fmt.Sprintf("session %s not analyzed yet (POST .../analyze first)", s.id)}
	}
	if req.Workers != 0 {
		s.a.Opts.Workers = req.Workers
		s.workers = req.Workers
	}
	var resp editsResponse
	err := incremental.ReplayScript(strings.NewReader(req.Script), "script",
		func(line int, batch []incremental.Edit) error {
			start := time.Now()
			before := s.a.DrainStats()
			stats, err := s.a.Reanalyze(batch)
			if err != nil {
				return err
			}
			dur := time.Since(start)
			after := s.a.DrainStats()
			sv.m.observeDrain(core.DrainStats{
				Batches:     after.Batches - before.Batches,
				BatchItems:  after.BatchItems - before.BatchItems,
				FenceStalls: after.FenceStalls - before.FenceStalls,
				Preempts:    after.Preempts - before.Preempts,
				SpecLive:    after.SpecLive - before.SpecLive,
				SpecUsed:    after.SpecUsed - before.SpecUsed,
				CommitDepth: after.CommitDepth,
				Regions:     after.Regions,
			})
			s.edited = true
			s.barriers++
			sv.m.editBatches.Add(1)
			sv.m.editLatency.observe(dur)
			if stats.Full {
				sv.m.editsFull.Add(1)
			} else {
				sv.m.editsIncremental.Add(1)
			}
			if stats.Epoch > s.lastEpoch {
				sv.m.drainEpochs.Add(int64(stats.Epoch - s.lastEpoch))
				s.lastEpoch = stats.Epoch
			}
			snap := s.buildSnapshot()
			resp.Barriers = append(resp.Barriers, barrierResult{
				Line:            line,
				Incremental:     !stats.Full,
				Reason:          stats.Reason,
				DirtyNodes:      stats.DirtyNodes,
				TotalNodes:      stats.TotalNodes,
				DirtyFrac:       stats.DirtyFrac,
				Epoch:           stats.Epoch,
				StagesEvaluated: stats.StagesEvaluated,
				DurationNs:      dur.Nanoseconds(),
				Status:          core.FormatReanalyzeStatus("crystald", stats),
				Report:          snap.Report,
			})
			return nil
		})
	if len(resp.Barriers) > 0 {
		// The session diverged from its loaded source even if a later
		// batch failed: stop answering content-hash dedup for it.
		sv.markEdited(s)
		s.nw = s.a.Net // Reanalyze advanced the network generation
		if s.shared {
			// Copy-on-edit detach: Reanalyze's Apply cloned the shared
			// view before editing, so s.nw is now a private heap copy —
			// drop the arena reference (the mapping stays resident; the
			// clone's name strings still alias its pages).
			s.shared = false
			sv.arena.detach(s.akey)
		}
	}
	if err != nil {
		// A failed batch is atomic (Apply clones before editing), but
		// earlier barriers in the same script have been applied; report
		// them alongside the error so the client knows where it stopped.
		return http.StatusUnprocessableEntity, map[string]any{
			"error":    err.Error(),
			"barriers": resp.Barriers,
		}
	}
	resp.Snapshot = s.snap.Load()
	return http.StatusOK, resp
}

func (sv *Server) handleCritical(w http.ResponseWriter, r *http.Request) {
	s := sv.lookup(r.PathValue("id"))
	if s == nil {
		writeErr(w, http.StatusNotFound, "no session %q", r.PathValue("id"))
		return
	}
	snap := s.snap.Load()
	if snap == nil {
		writeErr(w, http.StatusConflict, "session %s not analyzed yet (POST .../analyze first)", s.id)
		return
	}
	paths := snap.Paths
	if q := r.URL.Query().Get("n"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, "bad n %q", q)
			return
		}
		if n < len(paths) {
			paths = paths[:n]
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"session":     s.id,
		"epoch":       snap.Epoch,
		"critical_ns": snap.CriticalNs,
		"paths":       paths,
	})
}

// decodeOptional decodes a JSON body, tolerating an empty one.
func decodeOptional(r *http.Request, v any) error {
	err := json.NewDecoder(r.Body).Decode(v)
	if err == nil || err == io.EOF {
		return nil
	}
	return err
}
