package erc_test

import (
	"fmt"

	"repro/internal/erc"
	"repro/internal/netlist"
	"repro/internal/tech"
)

// Example checks a deliberately broken inverter: the pullup is drawn as
// strong as the pulldown, ruining the output low level.
func Example() {
	p := tech.NMOS4()
	nw := netlist.New("bad-inv", p)
	in, out := nw.Node("in"), nw.Node("out")
	nw.MarkInput(in)
	nw.AddTrans(tech.NEnh, in, out, nw.GND(), 0, 0)
	nw.AddTrans(tech.NDep, out, nw.Vdd(), out, 4*p.MinW, p.MinL)

	for _, f := range erc.Check(nw, erc.Options{}) {
		fmt.Printf("%s %s at %s\n", f.Severity, f.Rule, f.Node.Name)
	}
	// Output:
	// warning ratio at out
}
