package netlist

import (
	"bytes"
	"crypto/sha256"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/tech"
)

// TestSnapshotRoundTripProperty: for a population of random networks,
// snapshot encode → decode reproduces the network exactly — structure,
// indexes, adjacency order — and the decoded network re-serializes to
// the same .sim bytes as the original.
func TestSnapshotRoundTripProperty(t *testing.T) {
	for _, p := range []*tech.Params{tech.NMOS4(), tech.CMOS3()} {
		for seed := uint64(0); seed < 40; seed++ {
			nw := randomNetwork(seed, p)
			hash := sha256.Sum256([]byte(nw.Name))
			var buf bytes.Buffer
			if err := WriteSnapshot(&buf, nw, hash); err != nil {
				t.Fatalf("seed %d: write: %v", seed, err)
			}
			got, gotHash, err := ReadSnapshot(bytes.NewReader(buf.Bytes()), p)
			if err != nil {
				t.Fatalf("seed %d: read: %v", seed, err)
			}
			if gotHash != hash {
				t.Fatalf("seed %d: source hash mangled", seed)
			}
			if derr := DiffNetworks(nw, got); derr != nil {
				t.Fatalf("seed %d: %v", seed, derr)
			}
			var a, b strings.Builder
			if err := WriteSim(&a, nw); err != nil {
				t.Fatal(err)
			}
			if err := WriteSim(&b, got); err != nil {
				t.Fatal(err)
			}
			if a.String() != b.String() {
				t.Fatalf("seed %d: WriteSim differs after snapshot round trip", seed)
			}
		}
	}
}

// TestSnapshotParsedRoundTrip: parse → snapshot → load → WriteSim is
// byte-identical to parse → WriteSim, for a real parsed netlist
// (exercises rails, aliases resolved away, directives, wire resistors).
func TestSnapshotParsedRoundTrip(t *testing.T) {
	p := tech.NMOS4()
	nw, err := ReadSim("sample", p, strings.NewReader(sampleSim))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, nw, sha256.Sum256([]byte(sampleSim))); err != nil {
		t.Fatal(err)
	}
	got, _, err := ReadSnapshot(bytes.NewReader(buf.Bytes()), p)
	if err != nil {
		t.Fatal(err)
	}
	if derr := DiffNetworks(nw, got); derr != nil {
		t.Fatal(derr)
	}
	if err := got.Check(); err != nil {
		t.Fatalf("loaded snapshot fails Check: %v", err)
	}
}

// TestSnapshotRejectsCorruption: every single-byte flip in a valid
// snapshot must produce an error, never a silently different network.
// (The CRC catches payload damage; header damage trips magic/version.)
func TestSnapshotRejectsCorruption(t *testing.T) {
	p := tech.NMOS4()
	nw := randomNetwork(7, p)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, nw, [32]byte{1}); err != nil {
		t.Fatal(err)
	}
	orig := buf.Bytes()
	for i := range orig {
		mut := bytes.Clone(orig)
		mut[i] ^= 0x40
		got, _, err := ReadSnapshot(bytes.NewReader(mut), p)
		if err == nil {
			// A flip inside the CRC field itself can only fail; a flip
			// that decodes must at minimum not be structurally identical
			// — which the CRC rules out entirely.
			t.Fatalf("byte %d: corrupted snapshot accepted (network %v)", i, got.Stats())
		}
	}
	// Truncations must also fail cleanly.
	for _, cut := range []int{0, 3, 11, 12, len(orig) / 2, len(orig) - 1} {
		if _, _, err := ReadSnapshot(bytes.NewReader(orig[:cut]), p); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Trailing garbage is rejected too (CRC covers only the payload it
	// claims, so the check is explicit).
	if _, _, err := ReadSnapshot(bytes.NewReader(append(bytes.Clone(orig), 0)), p); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

// TestSnapshotTechMismatch: a snapshot taken in one technology must not
// load into another.
func TestSnapshotTechMismatch(t *testing.T) {
	nw := randomNetwork(3, tech.NMOS4())
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, nw, [32]byte{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadSnapshot(bytes.NewReader(buf.Bytes()), tech.CMOS3()); err == nil {
		t.Fatal("cross-technology snapshot accepted")
	}
}

// TestLoadSimFile exercises the cache protocol end to end: cold miss
// parses and writes the snapshot, warm hit skips parsing, and editing
// the source invalidates the cache.
func TestLoadSimFile(t *testing.T) {
	p := tech.NMOS4()
	dir := t.TempDir()
	simPath := filepath.Join(dir, "sample.sim")
	snapPath := filepath.Join(dir, "sample.simx")
	if err := os.WriteFile(simPath, []byte(sampleSim), 0o644); err != nil {
		t.Fatal(err)
	}
	opt := LoadOptions{Workers: 2, Snapshot: snapPath}

	cold, res, err := LoadSimFile("sample", simPath, p, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.FromCache() || res.Source != SourceParse {
		t.Fatalf("cold load claimed a cache hit (source %q)", res.Source)
	}
	if _, err := os.Stat(snapPath); err != nil {
		t.Fatalf("cold load did not write snapshot: %v", err)
	}

	warm, res, err := LoadSimFile("sample", simPath, p, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.FromCache() {
		t.Fatal("warm load missed the snapshot")
	}
	if mmapSupported && (res.Source != SourceMmap || res.Mapped == nil) {
		t.Fatalf("warm load source %q, want mmap with a live mapping", res.Source)
	}
	if derr := DiffNetworks(cold, warm); derr != nil {
		t.Fatalf("warm network differs: %v", derr)
	}

	// Append a record: content hash changes, snapshot must be ignored
	// and rewritten.
	if err := os.WriteFile(simPath, []byte(sampleSim+"N extra 5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	edited, res, err := LoadSimFile("sample", simPath, p, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.FromCache() {
		t.Fatal("stale snapshot served after source edit")
	}
	if edited.Lookup("extra") == nil {
		t.Fatal("edited source not reparsed")
	}
	// And the rewritten snapshot now reflects the edit.
	again, res, err := LoadSimFile("sample", simPath, p, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.FromCache() || again.Lookup("extra") == nil {
		t.Fatalf("snapshot not refreshed after edit (source %q)", res.Source)
	}

	// The name is a caller-chosen label outside the content hash: a hit
	// under a different name is served but relabeled, never mislabeled.
	renamed, res, err := LoadSimFile("other", simPath, p, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.FromCache() || renamed.Name != "other" {
		t.Fatalf("renamed load: source=%q name=%q, want hit under name \"other\"", res.Source, renamed.Name)
	}

	// NoMmap forces the heap decoder even when a fresh v2 file exists.
	heap, res, err := LoadSimFile("sample", simPath, p,
		LoadOptions{Workers: 2, Snapshot: snapPath, NoMmap: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != SourceSnapshot || res.Mapped != nil {
		t.Fatalf("NoMmap load source %q, want %q with no mapping", res.Source, SourceSnapshot)
	}
	if derr := DiffNetworks(again, heap); derr != nil {
		t.Fatalf("heap-decoded network differs from mapped: %v", derr)
	}

	// Disabled cache: parse every time, never touch the snapshot file.
	if err := os.Remove(snapPath); err != nil {
		t.Fatal(err)
	}
	if _, res, err = LoadSimFile("sample", simPath, p, LoadOptions{}); err != nil || res.FromCache() {
		t.Fatalf("uncached load: source=%q err=%v", res.Source, err)
	}
	if _, err := os.Stat(snapPath); !os.IsNotExist(err) {
		t.Fatal("uncached load wrote a snapshot")
	}
}
