// Instance annotation coverage: the @ inst .sim directive (serial and
// parallel parsers, identical errors), the optional v2 snapshot sections
// (round trip, byte-compatibility for instance-free files, corruption),
// the v1 format's deliberate lossiness, and Import's instance recording.
package netlist

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"strings"
	"testing"

	"repro/internal/tech"
)

const instSampleSim = `| units: 100 tech: nmos inst-sample
e in mid GND 2 2
d mid Vdd mid 8 2
e mid out GND 2 2
d out Vdd out 8 2
@ in in
@ out out
@ inst inv0 0 2
@ inst inv1 2 4
`

// instNetwork returns a checked network carrying instance annotations.
func instNetwork(t *testing.T, p *tech.Params) *Network {
	t.Helper()
	nw, err := ReadSim("inst", p, strings.NewReader(instSampleSim))
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Check(); err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestReadSimInstances(t *testing.T) {
	p := tech.NMOS4()
	nw := instNetwork(t, p)
	want := []Instance{{"inv0", 0, 2}, {"inv1", 2, 4}}
	if len(nw.Instances) != len(want) {
		t.Fatalf("got %d instances, want %d", len(nw.Instances), len(want))
	}
	for i, w := range want {
		if nw.Instances[i] != w {
			t.Errorf("instance %d: got %+v, want %+v", i, nw.Instances[i], w)
		}
	}
}

// TestSimInstanceRoundTrip: WriteSim emits @ inst lines that ReadSim and
// ReadSimParallel both reproduce exactly, at every chunking.
func TestSimInstanceRoundTrip(t *testing.T) {
	p := tech.NMOS4()
	nw := instNetwork(t, p)
	var sb strings.Builder
	if err := WriteSim(&sb, nw); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	serial, err := ReadSim("back", p, strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Instances) != 2 || serial.Instances[0] != nw.Instances[0] || serial.Instances[1] != nw.Instances[1] {
		t.Fatalf("serial round trip mangled instances: %+v", serial.Instances)
	}
	for _, workers := range []int{1, 2, 4} {
		par, err := readSimChunked("back", p, strings.NewReader(text), workers, 1)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if derr := DiffNetworks(serial, par); derr != nil {
			t.Fatalf("workers=%d: %v", workers, derr)
		}
	}
	clone := nw.Clone()
	if derr := DiffNetworks(nw, clone); derr != nil {
		t.Fatalf("clone dropped instances: %v", derr)
	}
}

// TestSimInstanceErrors pins the parser's rejection of malformed @ inst
// directives — and that the parallel parser reports the identical error
// at every chunking, including the deferred upper-bound check.
func TestSimInstanceErrors(t *testing.T) {
	p := tech.NMOS4()
	cases := []struct {
		name, text string
	}{
		{"missing range", "e a b GND\n@ inst x 0\n"},
		{"bad lo", "e a b GND\n@ inst x q 1\n"},
		{"bad hi", "e a b GND\n@ inst x 0 q\n"},
		{"negative lo", "e a b GND\n@ inst x -1 1\n"},
		{"inverted range", "e a b GND\n@ inst x 1 0\n"},
		{"range past count", "e a b GND\n@ inst x 0 2\n"},
	}
	for _, tc := range cases {
		_, serr := ReadSim("bad", p, strings.NewReader(tc.text))
		if serr == nil {
			t.Errorf("%s: serial parser accepted %q", tc.name, tc.text)
			continue
		}
		for _, workers := range []int{1, 2, 4} {
			_, perr := readSimChunked("bad", p, strings.NewReader(tc.text), workers, 1)
			if perr == nil || perr.Error() != serr.Error() {
				t.Errorf("%s workers=%d: got %v, want %v", tc.name, workers, perr, serr)
			}
		}
	}
}

// TestSnapshotV2InstanceRoundTrip: instances survive the v2 snapshot
// through both the heap decoder and the mapped loader.
func TestSnapshotV2InstanceRoundTrip(t *testing.T) {
	p := tech.NMOS4()
	nw := instNetwork(t, p)
	hash := sha256.Sum256([]byte(instSampleSim))
	var buf bytes.Buffer
	if err := WriteSnapshotV2(&buf, nw, hash); err != nil {
		t.Fatal(err)
	}
	got, gotHash, err := ReadSnapshot(bytes.NewReader(buf.Bytes()), p)
	if err != nil {
		t.Fatal(err)
	}
	if gotHash != hash {
		t.Fatal("hash mangled")
	}
	if derr := DiffNetworks(nw, got); derr != nil {
		t.Fatal(derr)
	}
	if !MmapSupported {
		t.Skip("no mmap on this platform")
	}
	m, err := OpenMapped(writeTemp(t, buf.Bytes()), p)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if derr := DiffNetworks(nw, m.Net); derr != nil {
		t.Fatal(derr)
	}
}

// TestSnapshotV2InstanceFreeBytes: a network without instances must write
// exactly the ten fixed sections — the instance sections may not appear,
// so instance-free files stay byte-compatible with earlier readers.
func TestSnapshotV2InstanceFreeBytes(t *testing.T) {
	p := tech.NMOS4()
	data, _, _ := sampleV2Bytes(t, p)
	count := binary.LittleEndian.Uint32(data[12:16])
	if count != 10 {
		t.Fatalf("instance-free file has %d sections, want 10", count)
	}
	for i := 0; i < int(count); i++ {
		id := binary.LittleEndian.Uint32(data[v2HeaderSize+i*v2SectionSize:])
		if id == secInst || id == secInstPath {
			t.Fatalf("instance-free file emitted section %d", id)
		}
	}
}

// TestSnapshotV1DropsInstances documents the deliberate v1 lossiness:
// the legacy format has no instance section, so a v1 round trip of an
// instance-bearing network yields the same electrical network with the
// annotations stripped.
func TestSnapshotV1DropsInstances(t *testing.T) {
	p := tech.NMOS4()
	nw := instNetwork(t, p)
	var buf bytes.Buffer
	if err := WriteSnapshotV1(&buf, nw, [32]byte{1}); err != nil {
		t.Fatal(err)
	}
	got, _, err := ReadSnapshot(bytes.NewReader(buf.Bytes()), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Instances) != 0 {
		t.Fatalf("v1 round trip produced %d instances, want 0", len(got.Instances))
	}
	got.Instances = append([]Instance(nil), nw.Instances...)
	if derr := DiffNetworks(nw, got); derr != nil {
		t.Fatalf("v1 lost more than the annotations: %v", derr)
	}
}

// instSectionEntry locates the section-table entry for id in a v2 image.
func instSectionEntry(t *testing.T, b []byte, id uint32) []byte {
	t.Helper()
	count := binary.LittleEndian.Uint32(b[12:16])
	for i := 0; i < int(count); i++ {
		ent := b[v2HeaderSize+i*v2SectionSize:][:v2SectionSize]
		if binary.LittleEndian.Uint32(ent[0:4]) == id {
			return ent
		}
	}
	t.Fatalf("section %d not in table", id)
	return nil
}

// TestSnapshotV2InstanceCorruption: every malformed-instance-section
// class the decoder must reject, with CRCs refreshed so the targeted
// bounds check — not the checksum — does the rejecting.
func TestSnapshotV2InstanceCorruption(t *testing.T) {
	p := tech.NMOS4()
	nw := instNetwork(t, p)
	var buf bytes.Buffer
	if err := WriteSnapshotV2(&buf, nw, sha256.Sum256([]byte(instSampleSim))); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	mutate := func(name string, f func(b []byte)) {
		b := bytes.Clone(data)
		f(b)
		refreshV2CRCs(b)
		if _, _, err := ReadSnapshot(bytes.NewReader(b), p); err == nil {
			t.Errorf("%s: heap load accepted corrupt instance section", name)
		} else if MmapSupported {
			if _, merr := OpenMapped(writeTemp(t, b), p); merr == nil {
				t.Errorf("%s: mapped load accepted corrupt instance section", name)
			}
		}
	}

	instOff := func(b []byte) int {
		return int(binary.LittleEndian.Uint64(instSectionEntry(t, b, secInst)[8:16]))
	}
	mutate("range past transistor count", func(b []byte) {
		binary.LittleEndian.PutUint32(b[instOff(b)+4:], uint32(len(nw.Trans)+1))
	})
	mutate("inverted transistor range", func(b []byte) {
		r := b[instOff(b):]
		binary.LittleEndian.PutUint32(r[0:4], 3)
		binary.LittleEndian.PutUint32(r[4:8], 1)
	})
	mutate("path end past payload", func(b []byte) {
		binary.LittleEndian.PutUint32(b[instOff(b)+12:], 1<<20)
	})
	mutate("inverted path range", func(b []byte) {
		r := b[instOff(b):]
		binary.LittleEndian.PutUint32(r[8:12], 4)
		binary.LittleEndian.PutUint32(r[12:16], 1)
	})
	mutate("ragged record size", func(b []byte) {
		ent := instSectionEntry(t, b, secInst)
		length := binary.LittleEndian.Uint64(ent[16:24])
		binary.LittleEndian.PutUint64(ent[16:24], length-1)
	})
	mutate("missing path section", func(b []byte) {
		// Retag instPath as an unknown id: PathEnd then exceeds the
		// (now empty) path payload.
		ent := instSectionEntry(t, b, secInstPath)
		binary.LittleEndian.PutUint32(ent[0:4], 63)
	})

	// Truncating the file anywhere in the new sections must still fail
	// cleanly (fileSize/CRC guard the tail like every other section).
	for cut := instOff(data); cut < len(data); cut += 3 {
		if _, _, err := ReadSnapshot(bytes.NewReader(data[:cut]), p); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

// TestImportRecordsInstances: each Import call stamps one instance per
// nested child (rebased, path-prefixed) plus one covering the whole
// import, children before parents, and ranges that Check accepts.
func TestImportRecordsInstances(t *testing.T) {
	p := tech.NMOS4()
	leaf := New("leaf", p)
	in, out := leaf.Node("a"), leaf.Node("z")
	leaf.MarkInput(in)
	leaf.AddTrans(tech.NEnh, in, out, leaf.GND(), 4e-6, 2e-6)
	leaf.AddTrans(tech.NDep, out, out, leaf.Vdd(), 2e-6, 8e-6)

	mid := New("mid", p)
	if err := mid.Import(leaf, "u0/", nil); err != nil {
		t.Fatal(err)
	}
	if err := mid.Import(leaf, "u1/", nil); err != nil {
		t.Fatal(err)
	}

	top := New("top", p)
	if err := top.Import(mid, "m/", nil); err != nil {
		t.Fatal(err)
	}
	want := []Instance{
		{"m/u0/", 0, 2},
		{"m/u1/", 2, 4},
		{"m/", 0, 4},
	}
	if len(top.Instances) != len(want) {
		t.Fatalf("got %d instances %+v, want %d", len(top.Instances), top.Instances, len(want))
	}
	for i, w := range want {
		if top.Instances[i] != w {
			t.Errorf("instance %d: got %+v, want %+v", i, top.Instances[i], w)
		}
	}
	if err := top.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckRejectsBadInstances: Check validates the instance table.
func TestCheckRejectsBadInstances(t *testing.T) {
	p := tech.NMOS4()
	for _, tc := range []struct {
		name string
		inst Instance
	}{
		{"empty path", Instance{"", 0, 1}},
		{"negative lo", Instance{"x", -1, 1}},
		{"inverted", Instance{"x", 2, 1}},
		{"past count", Instance{"x", 0, 99}},
	} {
		nw := instNetwork(t, p)
		nw.Instances = append(nw.Instances, tc.inst)
		if err := nw.Check(); err == nil {
			t.Errorf("%s: Check accepted %+v", tc.name, tc.inst)
		}
	}
}
